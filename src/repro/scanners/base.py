"""Scanner tool wire-behaviour models.

Each high-speed scanning tool crafts packets differently — how the IP
Identification field is initialised, how the TCP sequence number encodes
response-matching state, which source ports are used, and in which order
targets are visited.  The paper's fingerprinting methodology (Section 3.3)
exploits exactly these differences; the models here are the *generating* side,
re-implementing each tool's published behaviour so that synthetic telescope
traffic carries authentic fingerprints for the detectors in
:mod:`repro.core.fingerprints` to find.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Type

import numpy as np

from repro._util.rng import RandomState, as_generator


class Tool(str, enum.Enum):
    """Scanning tools the paper tracks, plus the unknown bucket."""

    ZMAP = "zmap"
    MASSCAN = "masscan"
    NMAP = "nmap"
    MIRAI = "mirai"
    UNICORN = "unicorn"
    UNKNOWN = "unknown"

    def __str__(self) -> str:  # keep table output tidy
        return self.value


class TargetOrder(str, enum.Enum):
    """Order in which a scan visits its target addresses.

    Lee et al. find 91% of port scanners target addresses sequentially;
    high-speed tools instead iterate a pseudorandom permutation of the space
    so probes (and telescope hits) are uniform in time.
    """

    SEQUENTIAL = "sequential"
    RANDOM_PERMUTATION = "random"


@dataclass(frozen=True)
class HeaderFields:
    """Vectorised header fields for a run of probe packets.

    All arrays share one length (the number of probes being emitted).
    """

    src_port: np.ndarray  # uint16
    ip_id: np.ndarray     # uint16
    seq: np.ndarray       # uint32
    ttl: np.ndarray       # uint8
    window: np.ndarray    # uint16

    def __post_init__(self) -> None:
        n = self.src_port.size
        for name in ("ip_id", "seq", "ttl", "window"):
            if getattr(self, name).size != n:
                raise ValueError(f"field {name} length mismatch")

    @property
    def count(self) -> int:
        return int(self.src_port.size)


class ScannerToolModel(abc.ABC):
    """Base class for per-tool packet-crafting behaviour.

    A model instance corresponds to one *scanner process* (one invocation of
    the tool on one host): per-instance state such as NMap's session secret or
    Unicorn's key lives on the instance, which is what makes the pairwise
    fingerprint relations hold within an instance's packets.
    """

    #: Which tool this model implements.
    tool: Tool = Tool.UNKNOWN
    #: How the tool iterates the target space.
    target_order: TargetOrder = TargetOrder.RANDOM_PERMUTATION

    def __init__(self, rng: RandomState = None):
        self._rng = as_generator(rng)

    @abc.abstractmethod
    def craft(self, dst_ip: np.ndarray, dst_port: np.ndarray) -> HeaderFields:
        """Craft header fields for probes to ``dst_ip``/``dst_port`` pairs.

        Inputs are uint32/uint16 arrays of equal length; the output fields
        must satisfy the tool's fingerprint relation.
        """

    def _validate_targets(
        self, dst_ip: np.ndarray, dst_port: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        dst_ip = np.asarray(dst_ip, dtype=np.uint32)
        dst_port = np.asarray(dst_port, dtype=np.uint16)
        if dst_ip.shape != dst_port.shape or dst_ip.ndim != 1:
            raise ValueError("dst_ip and dst_port must be equal-length 1-D arrays")
        return dst_ip, dst_port

    # Shared field helpers -------------------------------------------------

    def _ephemeral_src_ports(self, count: int, low: int = 32768, high: int = 61000) -> np.ndarray:
        """Ephemeral source ports as most tools use by default."""
        return self._rng.integers(low, high, size=count, dtype=np.uint16)

    def _default_ttls(self, count: int, base: int = 64) -> np.ndarray:
        """TTLs after a plausible path length (tools send with a fixed
        initial TTL; the telescope sees it decremented by 5–25 hops)."""
        hops = self._rng.integers(5, 26, size=count)
        return (base - hops).astype(np.uint8)


_REGISTRY: Dict[Tool, Type[ScannerToolModel]] = {}


def register_tool(cls: Type[ScannerToolModel]) -> Type[ScannerToolModel]:
    """Class decorator registering a model as the implementation of its tool."""
    if cls.tool in _REGISTRY:
        raise ValueError(f"duplicate model for tool {cls.tool}")
    _REGISTRY[cls.tool] = cls
    return cls


def model_for(tool: Tool, rng: RandomState = None, **kwargs) -> ScannerToolModel:
    """Instantiate the registered model for ``tool``."""
    try:
        cls = _REGISTRY[tool]
    except KeyError:
        raise KeyError(f"no model registered for tool {tool!r}") from None
    return cls(rng=rng, **kwargs)


def registered_tools() -> Tuple[Tool, ...]:
    """Tools with a registered model, in registration order."""
    return tuple(_REGISTRY)
