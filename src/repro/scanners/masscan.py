"""Masscan wire-behaviour model.

Masscan (Graham 2014) keeps no per-connection state; instead it derives a
"SYN cookie" sequence number from the probe tuple and initialises the IP
Identification field as a function of destination information and TCP header
fields, so that for every Masscan packet (Durumeric et al. 2014, paper §3.3)::

    IPid = destIP ⊕ destPort ⊕ SeqNum      (truncated to 16 bits)

The relation is per-packet (no pairing needed), which is why Masscan is the
easiest tool to fingerprint and why the paper can attribute 81% of 2020-2022
scanning traffic to it.
"""

from __future__ import annotations

import numpy as np

from repro._util.rng import RandomState
from repro.scanners.base import (
    HeaderFields,
    ScannerToolModel,
    TargetOrder,
    Tool,
    register_tool,
)


def masscan_ip_id(dst_ip: np.ndarray, dst_port: np.ndarray, seq: np.ndarray) -> np.ndarray:
    """The Masscan IP-ID relation, usable by generator and detector alike."""
    mixed = (
        dst_ip.astype(np.uint32)
        ^ dst_port.astype(np.uint32)
        ^ seq.astype(np.uint32)
    )
    # Fold to 16 bits the way masscan does: the IP-ID field simply truncates.
    return (mixed & np.uint32(0xFFFF)).astype(np.uint16)


@register_tool
class MasscanModel(ScannerToolModel):
    """One Masscan process (one ``entropy`` seed)."""

    tool = Tool.MASSCAN
    target_order = TargetOrder.RANDOM_PERMUTATION

    def __init__(self, rng: RandomState = None):
        super().__init__(rng)
        # masscan's --seed entropy; feeds the syn-cookie function.
        self._entropy = int(self._rng.integers(0, 2**63))

    def craft(self, dst_ip: np.ndarray, dst_port: np.ndarray) -> HeaderFields:
        dst_ip, dst_port = self._validate_targets(dst_ip, dst_port)
        n = dst_ip.size
        src_port = self._ephemeral_src_ports(n)
        seq = self._syn_cookie(dst_ip, dst_port, src_port)
        ip_id = masscan_ip_id(dst_ip, dst_port, seq)
        return HeaderFields(
            src_port=src_port,
            ip_id=ip_id,
            seq=seq,
            ttl=self._default_ttls(n, base=255),
            window=np.full(n, 1024, dtype=np.uint16),  # masscan's default
        )

    def _syn_cookie(
        self, dst_ip: np.ndarray, dst_port: np.ndarray, src_port: np.ndarray
    ) -> np.ndarray:
        """Stateless sequence number keyed on the probe tuple + entropy."""
        mixed = (
            (dst_ip.astype(np.uint64) << np.uint64(32))
            | (dst_port.astype(np.uint64) << np.uint64(16))
            | src_port.astype(np.uint64)
        )
        mixed ^= np.uint64(self._entropy)
        with np.errstate(over="ignore"):  # wraparound is the mix
            mixed *= np.uint64(0xFF51AFD7ED558CCD)
        mixed ^= mixed >> np.uint64(33)
        return (mixed & np.uint64(0xFFFFFFFF)).astype(np.uint32)
