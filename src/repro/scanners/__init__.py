"""Scanner tool wire-behaviour models (the *generating* side of §3.3).

Importing this package registers all built-in tool models; use
:func:`model_for` to instantiate one by :class:`Tool`.
"""

from repro.scanners.base import (
    HeaderFields,
    ScannerToolModel,
    TargetOrder,
    Tool,
    model_for,
    register_tool,
    registered_tools,
)
from repro.scanners.zmap import ZMAP_IP_ID, ZMapModel
from repro.scanners.masscan import MasscanModel, masscan_ip_id
from repro.scanners.nmap import NMapModel, nmap_pair_relation_holds
from repro.scanners.mirai import STOCK_PORT_MIX, MiraiModel
from repro.scanners.unicorn import UnicornModel, unicorn_seq
from repro.scanners.custom import CustomToolModel
from repro.scanners.permutation import (
    DEFAULT_GENERATOR,
    ZMAP_PRIME,
    ZMapPermutation,
    is_generator,
    is_probable_prime,
    shard_set,
)

__all__ = [
    "HeaderFields",
    "ScannerToolModel",
    "TargetOrder",
    "Tool",
    "model_for",
    "register_tool",
    "registered_tools",
    "ZMAP_IP_ID",
    "ZMapModel",
    "MasscanModel",
    "masscan_ip_id",
    "NMapModel",
    "nmap_pair_relation_holds",
    "STOCK_PORT_MIX",
    "MiraiModel",
    "UnicornModel",
    "unicorn_seq",
    "CustomToolModel",
    "DEFAULT_GENERATOR",
    "ZMAP_PRIME",
    "ZMapPermutation",
    "is_generator",
    "is_probable_prime",
    "shard_set",
]
