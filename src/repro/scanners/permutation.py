"""ZMap-style address permutation and sharding.

ZMap visits the IPv4 space as a pseudorandom permutation so that probe
targets (and therefore failures, complaints and telescope hits) spread
uniformly over time, while needing **no per-target state**: the permutation
is a walk over the multiplicative group modulo a prime ``p > 2^32``.

For a prime ``p`` and a primitive root ``g`` (or any generator of a large
subgroup), the sequence ``x_{i+1} = x_i * g mod p`` visits every element of
``{1, …, p-1}`` exactly once before cycling.  Elements ``> 2^32 - 1`` are
skipped, leaving a permutation of the full IPv4 space minus address 0 (which
ZMap also skips).  This module implements that walk with the same prime
ZMap uses (``2^32 + 15``) plus the *sharding* scheme of Adrian et al.
(2014): shard ``k`` of ``n`` starts ``k`` steps into the walk and advances
by ``g^n`` each step, so the shards partition the permutation into ``n``
interleaved, disjoint, equally sized slices.

The simulator does not iterate 4 billion addresses, but this module is the
ground truth for *why* sharded scans show 1/n coverage modes (§6.4), and its
property tests verify partition-exactness on small primes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

#: The prime ZMap uses: the smallest prime above 2^32.
ZMAP_PRIME = (1 << 32) + 15

#: A generator of the multiplicative group mod ZMAP_PRIME (checked in tests
#: against the factorisation of p - 1).
DEFAULT_GENERATOR = 3


def is_probable_prime(n: int) -> bool:
    """Deterministic Miller–Rabin for 64-bit integers."""
    if n < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % small == 0:
            return n == small
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    # These witnesses are sufficient for n < 3.3 * 10^24.
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _prime_factors(n: int) -> List[int]:
    """Distinct prime factors by trial division (fine for p - 1 here)."""
    factors: List[int] = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            factors.append(d)
            while n % d == 0:
                n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        factors.append(n)
    return factors


def is_generator(g: int, p: int) -> bool:
    """Is ``g`` a generator of the multiplicative group mod prime ``p``?"""
    if not is_probable_prime(p):
        raise ValueError(f"{p} is not prime")
    if not 1 < g < p:
        return False
    order = p - 1
    return all(pow(g, order // q, p) != 1 for q in _prime_factors(order))


@dataclass(frozen=True)
class ZMapPermutation:
    """A stateless ZMap address permutation, optionally sharded.

    Attributes:
        prime: modulus (must be prime, > address space size).
        generator: group generator (must generate the full group).
        space_size: only walk values ``1 … space_size`` are yielded as
            targets (values above are skipped, as ZMap does for the
            out-of-range tail between 2^32 and p).
        shard: this instance's shard index.
        shards: total shard count.
        start: starting group element of the *unsharded* walk (ZMap derives
            it from the seed; any element of the group works).
    """

    prime: int = ZMAP_PRIME
    generator: int = DEFAULT_GENERATOR
    space_size: int = (1 << 32) - 1
    shard: int = 0
    shards: int = 1
    start: int = 1

    def __post_init__(self) -> None:
        if not is_probable_prime(self.prime):
            raise ValueError(f"modulus {self.prime} is not prime")
        if self.space_size >= self.prime:
            raise ValueError("space_size must be < prime")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if not 0 <= self.shard < self.shards:
            raise ValueError("shard must be in [0, shards)")
        if not 1 <= self.start < self.prime:
            raise ValueError("start must be a group element")

    @property
    def group_order(self) -> int:
        return self.prime - 1

    def shard_walk_length(self) -> int:
        """Group elements visited by this shard (before range-skipping)."""
        base, extra = divmod(self.group_order, self.shards)
        return base + (1 if self.shard < extra else 0)

    def __iter__(self) -> Iterator[int]:
        """Yield this shard's in-range targets in walk order.

        WARNING: a full-IPv4 walk yields ~2^32/shards values; iterate
        lazily or use small primes (tests do).
        """
        # Shard k starts k steps into the walk and advances by g^shards.
        step = pow(self.generator, self.shards, self.prime)
        value = (self.start * pow(self.generator, self.shard, self.prime)) % self.prime
        for _ in range(self.shard_walk_length()):
            if 1 <= value <= self.space_size:
                yield value
            value = (value * step) % self.prime

    def take(self, count: int) -> List[int]:
        """First ``count`` targets of this shard."""
        out: List[int] = []
        for target in self:
            out.append(target)
            if len(out) >= count:
                break
        return out

    def expected_share(self) -> float:
        """Fraction of the target space this shard covers (≈ 1/shards).

        This is the quantity behind the §6.4 coverage modes: ``n``
        collaborating ZMap shards each show up in a telescope with coverage
        ``≈ 1/n`` of a full sweep.
        """
        return self.shard_walk_length() / self.group_order


def shard_set(
    shards: int,
    prime: int = ZMAP_PRIME,
    generator: int = DEFAULT_GENERATOR,
    space_size: int = (1 << 32) - 1,
    start: int = 1,
) -> List[ZMapPermutation]:
    """All ``shards`` slices of one logical scan."""
    return [
        ZMapPermutation(prime=prime, generator=generator,
                        space_size=space_size, shard=k, shards=shards,
                        start=start)
        for k in range(shards)
    ]
