"""ZMap wire-behaviour model.

ZMap (Durumeric et al., USENIX Security 2013) marks outgoing frames by
initialising the IP Identification field to the constant **54321**; the TCP
sequence number carries a per-target validation value so replies can be
matched statelessly.  Targets are iterated as a pseudorandom permutation of
the IPv4 space (a cyclic group walk), so telescope hits are uniform over the
scan's duration.

Two deployment-era details the paper leans on are modelled:

* **Fingerprintability** — by 2023/2024 large scanning organisations run
  patched ZMap builds that randomise the IP-ID (paper §6: "scanning
  organizations do not use the version of ZMap that is easily fingerprintable
  ... anymore").  ``fingerprintable=False`` reproduces that behaviour.
* **Sharding** — ZMap can split one logical scan across ``shards`` hosts, each
  covering an even slice of the permutation ("sharding", Adrian et al. 2014).
  Sharding is orchestrated at the campaign level (see
  :mod:`repro.simulation.campaigns`); the model records the shard geometry so
  coverage analyses can recover the characteristic 1/k coverage modes.
"""

from __future__ import annotations

import numpy as np

from repro._util.rng import RandomState
from repro.scanners.base import (
    HeaderFields,
    ScannerToolModel,
    TargetOrder,
    Tool,
    register_tool,
)

#: The IP Identification constant of stock ZMap.
ZMAP_IP_ID = 54321


@register_tool
class ZMapModel(ScannerToolModel):
    """Stock (or de-fingerprinted) ZMap instance."""

    tool = Tool.ZMAP
    target_order = TargetOrder.RANDOM_PERMUTATION

    def __init__(
        self,
        rng: RandomState = None,
        fingerprintable: bool = True,
        shard: int = 0,
        shards: int = 1,
    ):
        super().__init__(rng)
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if not 0 <= shard < shards:
            raise ValueError("shard must be in [0, shards)")
        self.fingerprintable = fingerprintable
        self.shard = shard
        self.shards = shards
        # ZMap derives validation from a per-run secret; one 64-bit key per
        # instance is enough to make seq deterministic per target.
        self._validation_key = int(self._rng.integers(0, 2**63))

    def craft(self, dst_ip: np.ndarray, dst_port: np.ndarray) -> HeaderFields:
        dst_ip, dst_port = self._validate_targets(dst_ip, dst_port)
        n = dst_ip.size
        if self.fingerprintable:
            ip_id = np.full(n, ZMAP_IP_ID, dtype=np.uint16)
        else:
            ip_id = self._rng.integers(0, 2**16, size=n, dtype=np.uint16)
        seq = self._validation(dst_ip, dst_port)
        return HeaderFields(
            src_port=self._ephemeral_src_ports(n),
            ip_id=ip_id,
            seq=seq,
            ttl=self._default_ttls(n, base=255),  # zmap sends with max TTL
            window=np.full(n, 65535, dtype=np.uint16),
        )

    def _validation(self, dst_ip: np.ndarray, dst_port: np.ndarray) -> np.ndarray:
        """Stateless response-validation value (keyed mix of the target).

        Mirrors ZMap's design (a MAC over the probe tuple) without the actual
        cryptography: a 64-bit multiply-xor mix keyed per instance.
        """
        mixed = (dst_ip.astype(np.uint64) << np.uint64(16)) ^ dst_port.astype(np.uint64)
        mixed ^= np.uint64(self._validation_key)
        with np.errstate(over="ignore"):  # wraparound is the mix
            mixed *= np.uint64(0x9E3779B97F4A7C15)
        return (mixed >> np.uint64(32)).astype(np.uint32)
