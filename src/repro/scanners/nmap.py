"""NMap wire-behaviour model.

NMap embeds response-matching information in the TCP sequence number but
obfuscates it with a per-session secret (Ghiëtte et al. 2016).  The payload is
a 16-bit value duplicated into both halves of the 32-bit field before the
secret is XORed on::

    SeqNum = (nfo || nfo) ⊕ secret

Because the "keystream" (the secret) is reused across all packets of a
session, XORing two sequence numbers from the same host cancels it::

    SeqNum1 ⊕ SeqNum2 = (nfo1 || nfo1) ⊕ (nfo2 || nfo2)

whose lower and upper 16-bit halves are then equal — the pairwise relation
the paper's detector tests (§3.3)::

    (SeqNum1 ⊕ SeqNum2) & 0xFFFF == ((SeqNum1 ⊕ SeqNum2) >> 16) & 0xFFFF
"""

from __future__ import annotations

import numpy as np

from repro._util.rng import RandomState
from repro.scanners.base import (
    HeaderFields,
    ScannerToolModel,
    TargetOrder,
    Tool,
    register_tool,
)


@register_tool
class NMapModel(ScannerToolModel):
    """One NMap session (one session secret).

    Unlike the high-speed tools, classic NMap walks its targets in order and
    retains state; the paper finds NMap scans sequential and comparatively
    small but — surprisingly — often faster than Masscan in practice.
    """

    tool = Tool.NMAP
    target_order = TargetOrder.SEQUENTIAL

    def __init__(self, rng: RandomState = None):
        super().__init__(rng)
        self._secret = int(self._rng.integers(0, 2**32))

    @property
    def session_secret(self) -> int:
        """The 32-bit per-session obfuscation secret."""
        return self._secret

    def craft(self, dst_ip: np.ndarray, dst_port: np.ndarray) -> HeaderFields:
        dst_ip, dst_port = self._validate_targets(dst_ip, dst_port)
        n = dst_ip.size
        # The embedded info is a 16-bit match token derived per probe.
        nfo = self._match_token(dst_ip, dst_port)
        doubled = (nfo.astype(np.uint32) << np.uint32(16)) | nfo.astype(np.uint32)
        seq = doubled ^ np.uint32(self._secret)
        return HeaderFields(
            src_port=self._ephemeral_src_ports(n),
            ip_id=self._rng.integers(0, 2**16, size=n, dtype=np.uint16),
            seq=seq,
            ttl=self._default_ttls(n, base=64),
            window=np.full(n, 1024, dtype=np.uint16),
        )

    def _match_token(self, dst_ip: np.ndarray, dst_port: np.ndarray) -> np.ndarray:
        """16-bit per-probe token (keyed fold of the target tuple)."""
        mixed = dst_ip.astype(np.uint32) ^ (dst_port.astype(np.uint32) << np.uint32(8))
        with np.errstate(over="ignore"):  # wraparound is the fold
            mixed *= np.uint32(0x9E3779B1)
        return ((mixed >> np.uint32(16)) & np.uint32(0xFFFF)).astype(np.uint16)


def nmap_pair_relation_holds(seq_a: int, seq_b: int) -> bool:
    """Test the paper's NMap pairwise sequence relation on two packets."""
    delta = (int(seq_a) ^ int(seq_b)) & 0xFFFFFFFF
    return (delta & 0xFFFF) == ((delta >> 16) & 0xFFFF)
