"""Parallel execution layer.

``repro.exec`` is where the pipeline stops being a single-threaded library:

* :func:`~repro.exec.parallel.simulate_years_parallel` fans the study years
  of a :class:`~repro.simulation.world.TelescopeWorld` out over a process
  pool.  It relies on the world deriving every year's random stream from
  ``(world seed, year)`` alone, which makes year simulation order-independent
  and therefore embarrassingly parallel — serial and parallel runs are
  byte-identical.
* :class:`~repro.exec.cache.CaptureCache` is a content-addressed store of
  synthesized captures (``.rtrace`` files): repeated benchmark / CLI / test
  runs with unchanged seed, calibration and budgets skip synthesis entirely.
"""

from repro.exec.cache import CACHE_SCHEMA_VERSION, CacheEntry, CaptureCache
from repro.exec.parallel import simulate_years_parallel

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheEntry",
    "CaptureCache",
    "simulate_years_parallel",
]
