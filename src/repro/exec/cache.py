"""Content-addressed capture cache.

Synthesizing a telescope period is orders of magnitude slower than reading
one back from disk, and most invocations (benchmarks, ``repro-scan
report``/``validate``, repeated test runs) re-request *identical* periods.
:class:`CaptureCache` therefore stores finished captures as ``.rtrace``
files addressed by a stable content key.

The key is a BLAKE2b digest over everything that determines a period's
bytes:

* the cache schema and library version (``CACHE_SCHEMA_VERSION`` +
  ``repro.__version__``) — bump either to invalidate every entry;
* the world's RNG stream signature (:func:`repro._util.rng.stream_signature`
  of the per-year stream root), i.e. the world seed;
* the telescope layout (monitored-address digest + ingress policy);
* the full calibrated :class:`~repro.simulation.config.YearConfig`,
  canonicalised field by field — editing any calibration constant changes
  the key, so stale captures can never shadow a recalibration;
* the simulation budgets (``days``, ``max_packets``, ``min_scans``).

Only calibrated periods (``config is None`` in ``simulate_year``) are
cached: ad-hoc config objects are not reliably serialisable, and they are
the rare experimental path.

Entries are written atomically (temp file + ``os.replace``) so a crashed or
concurrent writer can never leave a truncated entry behind; the packet
columns live in the trace chunks and the ground-truth campaign list plus
scale metadata in the trace's JSON meta block.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro import __version__
from repro._util.rng import stream_signature
from repro.telescope.trace import read_trace, read_trace_meta, write_trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulation.world import SimulationResult, TelescopeWorld

#: Bump to invalidate every existing cache entry (e.g. when the generator's
#: draw order changes without any config/version change).
CACHE_SCHEMA_VERSION = 1

PathLike = Union[str, Path]


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-stable structure for hashing.

    Dataclasses become ``[class name, {field: value}]``, enums their class
    and value, mappings sorted key/value pair lists (keys canonicalised too,
    so ``Tool`` or ``int`` keys are fine), numpy scalars/arrays plain Python.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return [type(obj).__name__, fields]
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__name__}:{obj.value}"
    if isinstance(obj, Mapping):
        pairs = [[_canonical(k), _canonical(v)] for k, v in obj.items()]
        return ["mapping", sorted(pairs, key=lambda kv: json.dumps(kv[0]))]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips doubles exactly; raw floats in json.dumps would
        # too, but hashing the repr keeps the canonical form explicit.
        return repr(obj)
    raise TypeError(f"cannot canonicalise {type(obj).__name__} for cache key")


def _telescope_token(telescope) -> Dict[str, Any]:
    """Stable description of the telescope's observable behaviour."""
    addresses = telescope.monitored.addresses
    return {
        "size": int(addresses.size),
        "addresses_blake2b": hashlib.blake2b(
            np.ascontiguousarray(addresses, dtype="<u4").tobytes(),
            digest_size=16,
        ).hexdigest(),
        "ingress_blocked": sorted(telescope.ingress.blocked_ports),
        "ingress_since": telescope.ingress.active_since_year,
    }


def _spec_to_json(spec) -> Dict[str, Any]:
    """Serialise one ground-truth CampaignSpec for the trace meta block."""
    return {
        "campaign_id": spec.campaign_id,
        "cohort": spec.cohort,
        "scanner_type": spec.scanner_type.value,
        "tool": spec.tool.value,
        "country": spec.country,
        "src_ips": list(spec.src_ips),
        "ports": list(spec.ports),
        "start": spec.start,
        "rate_pps": spec.rate_pps,
        "telescope_hits": spec.telescope_hits,
        "ipv4_coverage": spec.ipv4_coverage,
        "sequential": spec.sequential,
        "fingerprintable": spec.fingerprintable,
        "organisation": spec.organisation,
    }


def _spec_from_json(data: Dict[str, Any]):
    from repro.enrichment.types import ScannerType
    from repro.scanners.base import Tool
    from repro.simulation.campaigns import CampaignSpec

    return CampaignSpec(
        campaign_id=int(data["campaign_id"]),
        cohort=data["cohort"],
        scanner_type=ScannerType(data["scanner_type"]),
        tool=Tool(data["tool"]),
        country=data["country"],
        src_ips=tuple(int(ip) for ip in data["src_ips"]),
        ports=tuple(int(p) for p in data["ports"]),
        start=float(data["start"]),
        rate_pps=float(data["rate_pps"]),
        telescope_hits=int(data["telescope_hits"]),
        ipv4_coverage=float(data["ipv4_coverage"]),
        sequential=bool(data["sequential"]),
        fingerprintable=bool(data["fingerprintable"]),
        organisation=data["organisation"],
    )


@dataclasses.dataclass(frozen=True)
class CacheEntry:
    """One cached capture as seen by the maintenance commands."""

    key: str
    path: Path
    bytes: int
    mtime: float


class CaptureCache:
    """A directory of content-addressed ``.rtrace`` captures.

    Thread/process safety: lookups are plain reads; stores go through a
    temp file and an atomic rename, so concurrent writers of the same key
    simply race to produce identical bytes.

    Attributes:
        hits / misses: lookup counters for this instance (a hit is a
            successful :meth:`load`; results loaded from cache also carry
            ``SimulationResult.cache_hit = True``).
    """

    def __init__(self, root: PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # -- keys ---------------------------------------------------------------

    def key_for(
        self,
        world: "TelescopeWorld",
        year: int,
        days: int,
        max_packets: int,
        min_scans: int,
    ) -> str:
        """Content key of one calibrated period of ``world``."""
        from repro.simulation.config import year_config

        material = {
            "schema": CACHE_SCHEMA_VERSION,
            "version": __version__,
            "stream": list(stream_signature(world._stream_root)),
            "telescope": _telescope_token(world.telescope),
            "config": _canonical(year_config(year, days=days)),
            "budgets": {"days": days, "max_packets": max_packets,
                        "min_scans": min_scans},
        }
        blob = json.dumps(material, sort_keys=True).encode("utf-8")
        return hashlib.blake2b(blob, digest_size=16).hexdigest()

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.rtrace"

    # -- lookup / store -----------------------------------------------------

    def load(self, key: str, world: "TelescopeWorld") -> Optional["SimulationResult"]:
        """Materialise a cached period, or ``None`` on a miss.

        The live world's telescope and registry are attached to the result;
        they are part of the key, so they match what produced the capture.
        """
        from repro.simulation.config import year_config
        from repro.simulation.world import SimulationResult

        path = self.path_for(key)
        if not path.exists():
            self.misses += 1
            return None
        meta = read_trace_meta(path)
        if meta.get("cache_key") != key:
            # Foreign or damaged file squatting on the key's name.
            self.misses += 1
            return None
        batch, _ = read_trace(path)
        self.hits += 1
        # Refresh the entry's mtime so prune()'s LRU order tracks use, not
        # creation; best-effort (a concurrent prune may have removed it).
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - raced with prune/clear
            pass
        return SimulationResult(
            year=int(meta["year"]),
            config=year_config(int(meta["year"]), days=int(meta["days"])),
            telescope=world.telescope,
            registry=world.registry,
            batch=batch,
            campaigns=[_spec_from_json(s) for s in meta["campaigns"]],
            packet_scale=float(meta["packet_scale"]),
            scan_scale=float(meta["scan_scale"]),
            background_sources=int(meta["background_sources"]),
            backscatter_packets=int(meta["backscatter_packets"]),
            coverage_cap=float(meta["coverage_cap"]),
            cache_hit=True,
        )

    def store(self, key: str, result: "SimulationResult") -> Path:
        """Persist a finished period under ``key`` (atomic)."""
        path = self.path_for(key)
        meta = {
            "cache_key": key,
            "year": result.year,
            "days": result.days,
            "packet_scale": result.packet_scale,
            "scan_scale": result.scan_scale,
            "background_sources": result.background_sources,
            "backscatter_packets": result.backscatter_packets,
            "coverage_cap": result.coverage_cap,
            "campaigns": [_spec_to_json(s) for s in result.campaigns],
        }
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        try:
            write_trace(tmp, result.batch, meta=meta)
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # pragma: no cover - only on write failure
                tmp.unlink()
        return path

    # -- maintenance --------------------------------------------------------

    def entries(self) -> List[Path]:
        """Cached capture files, sorted by name."""
        return sorted(self.root.glob("*.rtrace"))

    def usage(self) -> List["CacheEntry"]:
        """Entry inventory in LRU order (least recently used first).

        ``load`` refreshes an entry's mtime, so mtime order is use order.
        Entries that vanish between the glob and the stat (concurrent
        prune) are skipped.
        """
        rows: List[CacheEntry] = []
        for path in self.entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            rows.append(CacheEntry(
                key=path.stem,
                path=path,
                bytes=int(stat.st_size),
                mtime=float(stat.st_mtime),
            ))
        rows.sort(key=lambda e: (e.mtime, e.key))
        return rows

    def total_bytes(self) -> int:
        """Total size of every cached capture."""
        return sum(entry.bytes for entry in self.usage())

    def prune(self, max_bytes: int) -> List["CacheEntry"]:
        """Evict least-recently-used entries until the cache fits.

        Deletions are plain unlinks — atomic against the cache's own
        readers, whose ``load`` treats a vanished file as a miss.  Returns
        the entries removed (possibly none).
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        entries = self.usage()
        total = sum(entry.bytes for entry in entries)
        removed: List[CacheEntry] = []
        for entry in entries:  # oldest first
            if total <= max_bytes:
                break
            try:
                entry.path.unlink()
            except OSError:  # pragma: no cover - raced with another pruner
                continue
            total -= entry.bytes
            removed.append(entry)
        return removed

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            path.unlink()
            removed += 1
        return removed

    def stats_line(self) -> str:
        """One-line human summary (used by the CLI)."""
        return (f"capture cache {self.root}: {self.hits} hit(s), "
                f"{self.misses} miss(es), {len(self.entries())} entr(y/ies)")
