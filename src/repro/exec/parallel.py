"""Process-parallel year simulation.

A decade of telescope periods is the pipeline's most expensive synthesis
step, and its years are independent once per-year randomness is derived from
``(world seed, year)`` alone (see ``TelescopeWorld.__init__``).  This module
exploits that: each year is simulated in a worker process holding a pickled
copy of the world, and the results are reassembled in the caller.

Guarantees:

* ``workers=0`` is a plain serial loop in the calling process;
* any ``workers >= 1`` produces byte-identical ``PacketBatch`` columns and
  identical ground-truth campaign lists, in any year order;
* a :class:`~repro.exec.cache.CaptureCache` is consulted (and populated)
  only from the parent process, so workers never race on cache files.

The worker's copies of the telescope and registry are dropped before the
result travels back (they can be megabytes, and the caller already holds
identical instances); the parent re-attaches its own.  One observable
difference from serial runs: ``Telescope.stats`` counters accumulate in the
worker copies and are discarded, so parallel runs do not advance the shared
telescope's observation statistics.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Dict, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.exec.cache import CaptureCache
    from repro.simulation.world import SimulationResult, TelescopeWorld


def _simulate_year_task(world, year, days, max_packets, min_scans):
    """Worker entry point: simulate one year on a pickled world copy.

    Must stay a module-level function (process pools pickle it by reference).
    """
    result = world.simulate_year(
        year, days=days, max_packets=max_packets, min_scans=min_scans
    )
    # Strip the heavy shared objects: the parent re-attaches its own
    # telescope/registry, which are identical by construction.
    result.telescope = None
    result.registry = None
    return result


def simulate_years_parallel(
    world: "TelescopeWorld",
    years: Sequence[int],
    days: int,
    max_packets: int,
    min_scans: int,
    workers: int = 0,
    cache: Optional["CaptureCache"] = None,
) -> Dict[int, "SimulationResult"]:
    """Simulate ``years`` of ``world``, optionally over a process pool.

    Args:
        world: the generator; its telescope/registry are shared by reference
            in serial mode and by pickled copy in parallel mode.
        years: study years to simulate (duplicates are simulated once).
        days / max_packets / min_scans: as in ``TelescopeWorld.simulate_year``.
        workers: 0 for serial; >= 1 for a process pool of that size.
        cache: optional capture cache, probed and populated in this process.

    Returns:
        ``{year: SimulationResult}`` in the order of ``years``.
    """
    if workers < 0:
        raise ValueError("workers must be non-negative")
    ordered = list(dict.fromkeys(years))
    results: Dict[int, "SimulationResult"] = {}

    pending = []
    for year in ordered:
        hit = None
        if cache is not None:
            key = cache.key_for(world, year, days=days, max_packets=max_packets,
                                min_scans=min_scans)
            hit = cache.load(key, world)
        if hit is not None:
            results[year] = hit
        else:
            pending.append(year)

    if pending:
        if workers == 0:
            for year in pending:
                results[year] = world.simulate_year(
                    year, days=days, max_packets=max_packets, min_scans=min_scans
                )
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    year: pool.submit(
                        _simulate_year_task, world, year, days, max_packets,
                        min_scans,
                    )
                    for year in pending
                }
                for year, future in futures.items():
                    result = future.result()
                    result.telescope = world.telescope
                    result.registry = world.registry
                    results[year] = result
        if cache is not None:
            for year in pending:
                key = cache.key_for(world, year, days=days,
                                    max_packets=max_packets, min_scans=min_scans)
                cache.store(key, results[year])

    return {year: results[year] for year in ordered}
