"""Unit tests for IPv4 address arithmetic and CIDR handling."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.telescope.addresses import (
    IPV4_SPACE_SIZE,
    AddressSet,
    CidrBlock,
    int_to_ip,
    ip_to_int,
    slash16_of,
    slash24_of,
)


class TestIpConversion:
    def test_roundtrip_known(self):
        assert ip_to_int("1.2.3.4") == 0x01020304
        assert int_to_ip(0x01020304) == "1.2.3.4"

    def test_zero_and_max(self):
        assert ip_to_int("0.0.0.0") == 0
        assert ip_to_int("255.255.255.255") == IPV4_SPACE_SIZE - 1

    def test_int_passthrough(self):
        assert ip_to_int(12345) == 12345

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "a.b.c.d", "1.2.3.256", "1.2.-3.4"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            ip_to_int(bad)

    def test_out_of_range_int(self):
        with pytest.raises(ValueError):
            ip_to_int(IPV4_SPACE_SIZE)
        with pytest.raises(ValueError):
            int_to_ip(-1)

    @given(st.integers(min_value=0, max_value=IPV4_SPACE_SIZE - 1))
    def test_roundtrip_property(self, value):
        assert ip_to_int(int_to_ip(value)) == value


class TestSlashHelpers:
    def test_slash16_scalar(self):
        assert slash16_of(ip_to_int("100.64.5.6")) == (100 << 8) | 64

    def test_slash16_array(self):
        arr = np.array([ip_to_int("10.0.0.1"), ip_to_int("10.1.0.1")], dtype=np.uint32)
        out = slash16_of(arr)
        assert out.tolist() == [10 << 8, (10 << 8) | 1]

    def test_slash24_scalar(self):
        assert slash24_of(ip_to_int("1.2.3.4")) == 0x010203


class TestCidrBlock:
    def test_parse(self):
        b = CidrBlock.parse("100.64.0.0/16")
        assert b.size == 65536
        assert str(b) == "100.64.0.0/16"

    def test_contains(self):
        b = CidrBlock.parse("100.64.0.0/16")
        assert "100.64.1.2" in b
        assert "100.65.0.0" not in b

    def test_contains_array(self):
        b = CidrBlock.parse("10.0.0.0/24")
        arr = np.array([ip_to_int("10.0.0.5"), ip_to_int("10.0.1.5")], dtype=np.uint32)
        assert b.contains_array(arr).tolist() == [True, False]

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError):
            CidrBlock(ip_to_int("10.0.0.1"), 24)

    def test_bad_prefix_len(self):
        with pytest.raises(ValueError):
            CidrBlock(0, 33)

    def test_malformed_parse(self):
        with pytest.raises(ValueError):
            CidrBlock.parse("10.0.0.0")

    def test_addresses_materialisation(self):
        b = CidrBlock.parse("10.0.0.0/30")
        assert b.addresses().tolist() == [ip_to_int("10.0.0.0") + i for i in range(4)]

    def test_addresses_refuses_huge(self):
        with pytest.raises(ValueError):
            CidrBlock.parse("0.0.0.0/4").addresses()

    def test_sample_within(self, rng):
        b = CidrBlock.parse("10.0.0.0/24")
        s = b.sample(rng, 100)
        assert np.all(b.contains_array(s))

    def test_overlap(self):
        a = CidrBlock.parse("10.0.0.0/24")
        b = CidrBlock.parse("10.0.0.128/25")
        assert a.overlap(b) == 128
        c = CidrBlock.parse("10.0.1.0/24")
        assert a.overlap(c) == 0

    def test_first_last(self):
        b = CidrBlock.parse("10.0.0.0/24")
        assert b.last - b.first == 255


class TestAddressSet:
    def test_dedup_and_sort(self):
        s = AddressSet([5, 3, 5, 1])
        assert list(s) == [1, 3, 5]
        assert len(s) == 3

    def test_contains(self):
        s = AddressSet([10, 20])
        assert 10 in s and 15 not in s

    def test_contains_array(self):
        s = AddressSet([10, 20])
        got = s.contains_array(np.array([10, 11, 20], dtype=np.uint32))
        assert got.tolist() == [True, False, True]

    def test_empty_contains_array(self):
        s = AddressSet([])
        assert not s.contains_array(np.array([1], dtype=np.uint32)).any()

    def test_from_blocks_full(self):
        s = AddressSet.from_blocks([CidrBlock.parse("10.0.0.0/28")])
        assert len(s) == 16

    def test_from_blocks_partial(self, rng):
        s = AddressSet.from_blocks([CidrBlock.parse("10.0.0.0/24")],
                                   population=0.5, rng=rng)
        assert len(s) == 128

    def test_from_blocks_partial_needs_rng(self):
        with pytest.raises(ValueError):
            AddressSet.from_blocks([CidrBlock.parse("10.0.0.0/24")], population=0.5)

    def test_from_blocks_bad_population(self, rng):
        with pytest.raises(ValueError):
            AddressSet.from_blocks([CidrBlock.parse("10.0.0.0/24")],
                                   population=0.0, rng=rng)

    def test_sample_members_only(self, rng):
        s = AddressSet([100, 200, 300])
        got = s.sample(rng, 50)
        assert set(got.tolist()) <= {100, 200, 300}

    def test_sample_empty_raises(self, rng):
        with pytest.raises(ValueError):
            AddressSet([]).sample(rng, 1)

    def test_space_fraction(self):
        s = AddressSet(range(1024))
        assert s.overlap_fraction_of_space() == pytest.approx(1024 / IPV4_SPACE_SIZE)
