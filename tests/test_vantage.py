"""Tests for multi-vantage observation (§7)."""

import numpy as np
import pytest

from repro.core import CampaignCriteria, analyze_period, identify_scans
from repro.enrichment import ScannerClassifier
from repro.simulation.vantage import (
    observe_campaigns,
    rescale_campaign,
    second_vantage,
)
from repro.telescope import CidrBlock, Telescope


@pytest.fixture(scope="module")
def other_telescope():
    """A differently *located* vantage of comparable size: one sparse /15
    monitoring ~71.5k addresses, like the paper's telescope."""
    return Telescope.from_blocks(
        [CidrBlock.parse("198.18.0.0/15")], population=0.5458, rng=21
    )


@pytest.fixture(scope="module")
def small_telescope():
    """A much smaller vantage (~16k addresses) for the size-bias test."""
    return Telescope.from_blocks(
        [CidrBlock.parse("198.51.0.0/16")], population=0.25, rng=22
    )


class TestRescale:
    def test_scaling_factor(self, sim2020, rng):
        spec = sim2020.campaigns[0]
        scaled = rescale_campaign(spec, 70_000, 35_000, rng)
        assert abs(scaled.telescope_hits - spec.telescope_hits / 2) <= 1

    def test_identity(self, sim2020, rng):
        spec = sim2020.campaigns[0]
        scaled = rescale_campaign(spec, 70_000, 70_000, rng)
        assert scaled.telescope_hits == spec.telescope_hits

    def test_validation(self, sim2020, rng):
        with pytest.raises(ValueError):
            rescale_campaign(sim2020.campaigns[0], 0, 100, rng)


class TestSecondVantage:
    def test_destinations_in_new_telescope(self, sim2020, other_telescope):
        batch = second_vantage(sim2020, other_telescope, rng=9)
        assert len(batch) > 1000
        assert np.all(other_telescope.monitored.contains_array(batch.dst_ip))

    def test_sources_shared_with_primary(self, sim2020, other_telescope):
        """Both vantages watch the same actors."""
        batch = second_vantage(sim2020, other_telescope, rng=9)
        primary_sources = {ip for c in sim2020.campaigns for ip in c.src_ips}
        seen = set(np.unique(batch.src_ip).tolist())
        assert seen <= primary_sources
        assert len(seen) > 0.5 * len(primary_sources)

    def test_volume_scales_with_size(self, sim2020, other_telescope):
        batch = second_vantage(sim2020, other_telescope, rng=9)
        campaign_pkts_primary = sum(c.telescope_hits for c in sim2020.campaigns)
        ratio = other_telescope.size / sim2020.telescope.size
        assert len(batch) == pytest.approx(campaign_pkts_primary * ratio,
                                           rel=0.25)

    def test_estimators_agree_across_vantages(self, sim2020, other_telescope):
        """The §3.4 estimator family must be vantage-invariant: the same
        campaigns, watched from a different telescope, yield compatible
        speed and coverage estimates."""
        batch = second_vantage(sim2020, other_telescope, rng=9)
        criteria = CampaignCriteria(
            telescope_size=other_telescope.size,
            telescope_extent=int(other_telescope.monitored.addresses[-1])
            - int(other_telescope.monitored.addresses[0]) + 1,
        )
        secondary = identify_scans(batch, criteria=criteria)
        primary = identify_scans(sim2020.batch)

        # Match scans by source and compare speed estimates.
        secondary_by_src = {}
        for i in range(len(secondary)):
            secondary_by_src.setdefault(int(secondary.src_ip[i]), []).append(
                float(secondary.speed_pps[i])
            )
        ratios = []
        for i in range(len(primary)):
            src = int(primary.src_ip[i])
            if src in secondary_by_src and not primary.sequential[i]:
                ratios.append(
                    np.median(secondary_by_src[src]) / primary.speed_pps[i]
                )
        assert len(ratios) > 30
        assert 0.7 < float(np.median(ratios)) < 1.4

    def test_tool_shares_agree(self, sim2020, other_telescope):
        """A same-size vantage elsewhere recovers the same tool mix."""
        batch = second_vantage(sim2020, other_telescope, rng=9)
        criteria = CampaignCriteria(telescope_size=other_telescope.size)
        secondary = identify_scans(batch, criteria=criteria)
        primary = identify_scans(sim2020.batch)
        a = primary.tool_shares_by_scans()
        b = secondary.tool_shares_by_scans()
        for tool, share in a.items():
            if share > 0.1:
                assert abs(b.get(tool, 0) - share) < 0.15, tool


class TestVantageSizeBias:
    def test_small_vantage_misses_small_campaigns(self, sim2020,
                                                  small_telescope):
        """§3.4's caveat, demonstrated: a smaller telescope under the same
        criteria loses the small campaigns, shifting the observed
        composition toward large scans."""
        batch = second_vantage(sim2020, small_telescope, rng=9)
        criteria = CampaignCriteria(telescope_size=small_telescope.size)
        small_view = identify_scans(batch, criteria=criteria)
        full_view = identify_scans(sim2020.batch)
        assert len(small_view) < 0.7 * len(full_view)
        # The scans that survive are the bigger ones.
        scale = small_telescope.size / sim2020.telescope.size
        assert (np.median(small_view.packets) / scale
                > np.median(full_view.packets))
