"""Unit tests for volatility, events, speed and coverage analyses,
exercised on crafted scan tables and batches with known properties."""

import numpy as np
import pytest

from repro.core.campaigns import ScanTable
from repro.core.coverage import (
    CoverageStats,
    collaborating_subnets,
    coverage_by_tool,
    coverage_modes,
    coverage_stats,
)
from repro.core.speed import (
    GBPS_IN_PPS,
    nmap_faster_than_masscan,
    overall_speed_trend,
    speed_stats,
    speed_stats_by_tool,
    tool_speed_trend,
    top_k_mean_speed,
    top_k_speed_trend,
)
from repro.core.volatility import source_weekly_tally, weekly_change_factors
from repro.scanners import Tool
from repro.telescope.packet import PacketBatch


def make_table(speed=None, coverage=None, tool=None, src=None, start=None,
               end=None, ports=None):
    """Construct a ScanTable directly from per-scan attribute lists."""
    n = len(speed or coverage or tool or src or start or [1.0])
    speed = np.array(speed if speed is not None else [500.0] * n, dtype=float)
    coverage = np.array(coverage if coverage is not None else [0.01] * n, dtype=float)
    tool = np.array(tool if tool is not None else [Tool.UNKNOWN] * n, dtype=object)
    src = np.array(src if src is not None else range(1000, 1000 + n), dtype=np.uint32)
    start = np.array(start if start is not None else range(n), dtype=float)
    end = np.array(end if end is not None else (start + 60.0), dtype=float)
    port_sets = [np.array(p, dtype=np.int64) for p in
                 (ports if ports is not None else [[80]] * n)]
    return ScanTable(
        src_ip=src,
        start=start,
        end=end,
        packets=np.full(n, 200, dtype=np.int64),
        distinct_dsts=np.full(n, 150, dtype=np.int64),
        port_sets=port_sets,
        primary_port=np.array([p[0] for p in port_sets], dtype=np.uint16),
        tool=tool,
        match_fraction=np.ones(n),
        speed_pps=speed,
        coverage=coverage,
    )


class TestSpeedStats:
    def test_basic_stats(self):
        stats = speed_stats(np.array([100.0, 200.0, 300.0, 400.0]))
        assert stats.scans == 4
        assert stats.median_pps == pytest.approx(250.0)
        assert stats.mean_pps == pytest.approx(250.0)
        assert stats.max_pps == 400.0

    def test_threshold_fractions(self):
        speeds = np.array([500.0, 2000.0, GBPS_IN_PPS * 2])
        stats = speed_stats(speeds)
        assert stats.fraction_over_1000pps == pytest.approx(2 / 3)
        assert stats.fraction_over_1gbps == pytest.approx(1 / 3)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            speed_stats(np.array([]))

    def test_by_tool_split(self):
        table = make_table(speed=[100, 200, 300, 400],
                           tool=[Tool.NMAP, Tool.NMAP, Tool.MASSCAN, Tool.MASSCAN])
        by_tool = speed_stats_by_tool(table)
        assert by_tool[Tool.NMAP].median_pps == pytest.approx(150.0)
        assert by_tool[Tool.MASSCAN].median_pps == pytest.approx(350.0)

    def test_nmap_vs_masscan(self):
        faster = make_table(speed=[900, 400],
                            tool=[Tool.NMAP, Tool.MASSCAN])
        assert nmap_faster_than_masscan(faster) is True
        slower = make_table(speed=[100, 400],
                            tool=[Tool.NMAP, Tool.MASSCAN])
        assert nmap_faster_than_masscan(slower) is False
        missing = make_table(speed=[100], tool=[Tool.ZMAP])
        assert nmap_faster_than_masscan(missing) is None

    def test_top_k(self):
        table = make_table(speed=list(range(1, 101)))
        assert top_k_mean_speed(table, k=10) == pytest.approx(np.mean(range(91, 101)))
        assert np.isnan(top_k_mean_speed(ScanTable.empty()))
        with pytest.raises(ValueError):
            top_k_mean_speed(table, k=0)


class TestSpeedTrends:
    def test_increasing_trend(self):
        tables = {y: make_table(speed=[float(100 * (y - 2014))] * 5)
                  for y in range(2015, 2020)}
        trend = overall_speed_trend(tables)
        assert trend.increasing and trend.r > 0.99

    def test_decreasing_trend(self):
        tables = {y: make_table(speed=[float(1000 - 100 * (y - 2015))] * 5)
                  for y in range(2015, 2020)}
        assert not overall_speed_trend(tables).increasing

    def test_tool_trend_filters(self):
        tables = {
            y: make_table(speed=[float(y), 1.0],
                          tool=[Tool.NMAP, Tool.MASSCAN])
            for y in range(2015, 2020)
        }
        trend = tool_speed_trend(tables, Tool.NMAP)
        assert trend.increasing
        flat = tool_speed_trend(tables, Tool.MASSCAN)
        assert np.isnan(flat.r) or abs(flat.r) < 0.2

    def test_trend_requires_two_years(self):
        with pytest.raises(ValueError):
            overall_speed_trend({2015: make_table()})

    def test_top_k_trend(self):
        tables = {y: make_table(speed=[float((y - 2010) * 1000)] * 3)
                  for y in (2015, 2018, 2021)}
        assert top_k_speed_trend(tables, k=2).increasing


class TestCoverage:
    def test_stats(self):
        stats = coverage_stats(np.array([0.1, 0.5, 0.95, 1.0]))
        assert stats.fraction_full_ipv4 == pytest.approx(0.5)
        assert stats.mean == pytest.approx(0.6375)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            coverage_stats(np.array([0.5]), full_threshold=0.0)
        with pytest.raises(ValueError):
            coverage_stats(np.array([]))

    def test_by_tool(self):
        table = make_table(coverage=[0.9, 0.1],
                           tool=[Tool.MASSCAN, Tool.MIRAI])
        by_tool = coverage_by_tool(table, full_threshold=0.8)
        assert by_tool[Tool.MASSCAN].fraction_full_ipv4 == 1.0
        assert by_tool[Tool.MIRAI].fraction_full_ipv4 == 0.0

    def test_modes_detect_slicing(self):
        """256-way sharding leaves a spike at coverage 1/256."""
        gen = np.random.default_rng(0)
        background = gen.uniform(0.001, 1.0, 500)
        mode = np.full(80, 1 / 256)
        modes = coverage_modes(np.concatenate([background, mode]),
                               min_count=30)
        assert any(abs(m.coverage - 1 / 256) / (1 / 256) < 0.2 for m in modes)

    def test_modes_empty_for_smooth(self):
        gen = np.random.default_rng(1)
        smooth = gen.uniform(0.01, 1.0, 2000)
        assert coverage_modes(smooth, min_count=60, excess_factor=5.0) == []

    def test_modes_empty_input(self):
        assert coverage_modes(np.array([])) == []

    def test_modes_bin_validation(self):
        with pytest.raises(ValueError):
            coverage_modes(np.array([0.5]), n_bins=5)


class TestCollaboration:
    def test_detects_slash24_cluster(self):
        base = 0x0A000000  # 10.0.0.0/24
        n = 16
        table = make_table(
            src=[base + i for i in range(n)],
            coverage=[0.004] * n,
            start=[100.0] * n,
            end=[5000.0] * n,
        )
        clusters = collaborating_subnets(table, min_sources=8)
        assert len(clusters) == 1
        assert clusters[0].sources == n
        assert clusters[0].total_coverage == pytest.approx(0.064)

    def test_scattered_sources_no_cluster(self):
        table = make_table(src=[0x0A000000 + i * 65536 for i in range(16)],
                           coverage=[0.004] * 16)
        assert collaborating_subnets(table, min_sources=8) == []

    def test_dissimilar_coverage_no_cluster(self):
        base = 0x0A000000
        gen = np.random.default_rng(0)
        table = make_table(
            src=[base + i for i in range(16)],
            coverage=gen.uniform(0.0001, 0.9, 16).tolist(),
            start=[100.0] * 16,
            end=[5000.0] * 16,
        )
        assert collaborating_subnets(table, min_sources=8,
                                     coverage_cv_max=0.3) == []

    def test_empty_table(self):
        assert collaborating_subnets(ScanTable.empty()) == []


def _week_batch(src_ips, weeks):
    """One packet per (src, week), placed mid-week."""
    week_s = 7 * 86_400.0
    n = len(src_ips)
    return PacketBatch(
        time=np.asarray(weeks, dtype=float) * week_s + week_s / 2,
        src_ip=np.asarray(src_ips, dtype=np.uint32),
        dst_ip=np.zeros(n, dtype=np.uint32),
        src_port=np.full(n, 40000, dtype=np.uint16),
        dst_port=np.full(n, 80, dtype=np.uint16),
        ip_id=np.zeros(n, dtype=np.uint16),
        seq=np.zeros(n, dtype=np.uint32),
        ttl=np.full(n, 64, dtype=np.uint8),
        window=np.zeros(n, dtype=np.uint16),
        flags=np.full(n, 2, dtype=np.uint8),
    )


class TestSourceWeeklyTally:
    def test_distinct_sources_past_week_255(self):
        """Regression: the old ``(src << 8) | week`` dedupe key let week
        indices past 255 bleed into the address bits, so an even source
        seen in week 257 collided with source+1 seen in week 1 — one of
        the two distinct (src, week) pairs silently vanished on any
        horizon beyond ~5 years."""
        src = np.uint32(0x0A0A0000 + 4)     # even, so src|1 == src + 1
        assert ((np.uint64(src) << np.uint64(8)) | np.uint64(257)) == (
            (np.uint64(src + 1) << np.uint64(8)) | np.uint64(1)
        )  # the collision the old key had
        batch = _week_batch([src, src + 1], [257, 1])
        keys, counts = source_weekly_tally(batch, n_weeks=300)
        block = int(src) >> 16
        assert keys.tolist() == [
            (block << 32) | 1, (block << 32) | 257
        ]
        assert counts.tolist() == [1, 1]

    def test_duplicate_packets_deduped_within_week(self):
        src = np.uint32(0x0A0A0001)
        batch = _week_batch([src, src, src + 1], [260, 260, 260])
        keys, counts = source_weekly_tally(batch, n_weeks=300)
        assert counts.tolist() == [2]  # two sources, one week, one block


class TestWeeklyChangeFactors:
    def test_stable_block_factor_one(self):
        series = np.array([[10, 10, 10]])
        factors = weekly_change_factors(series)
        assert np.allclose(factors, 1.0)

    def test_doubling_block(self):
        series = np.array([[10, 20, 40]])
        assert np.allclose(weekly_change_factors(series), 2.0)

    def test_decrease_counts_symmetrically(self):
        series = np.array([[40, 10]])
        assert weekly_change_factors(series)[0] == pytest.approx(4.0)

    def test_zero_to_active_is_inf(self):
        series = np.array([[0, 5]])
        assert np.isinf(weekly_change_factors(series)[0])

    def test_inactive_pairs_skipped(self):
        series = np.array([[0, 0, 5]])
        factors = weekly_change_factors(series)
        assert factors.size == 1  # only the (0, 5) transition counts

    def test_single_week_empty(self):
        assert weekly_change_factors(np.array([[5]])).size == 0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            weekly_change_factors(np.array([1, 2, 3]))
