"""Tests for the parallel execution layer (``repro.exec``).

The contract under test: per-year randomness is derived from
``(world seed, year)`` alone, so captures are byte-identical at any worker
count and in any simulation order, and the capture cache returns exactly
what synthesis would have produced.
"""

import numpy as np
import pytest

from repro.core.campaigns import identify_scans
from repro.exec import CaptureCache
from repro.simulation import TelescopeWorld

SEED = 31
YEARS = [2015, 2020]
DAYS = 4
MAX_PACKETS = 24_000
MIN_SCANS = 60


def _simulate(workers, years=YEARS, seed=SEED, cache=None):
    world = TelescopeWorld(rng=seed)
    return world.simulate_years(
        years, days=DAYS, max_packets=MAX_PACKETS, min_scans=MIN_SCANS,
        workers=workers, cache=cache,
    )


def _assert_batches_identical(a, b):
    cols_a, cols_b = a.columns(), b.columns()
    assert cols_a.keys() == cols_b.keys()
    for name in cols_a:
        assert cols_a[name].dtype == cols_b[name].dtype, name
        assert np.array_equal(cols_a[name], cols_b[name]), name


def _assert_results_identical(a, b):
    assert a.year == b.year
    assert a.packet_scale == b.packet_scale
    assert a.scan_scale == b.scan_scale
    assert a.background_sources == b.background_sources
    assert a.backscatter_packets == b.backscatter_packets
    assert a.coverage_cap == b.coverage_cap
    assert a.campaigns == b.campaigns
    _assert_batches_identical(a.batch, b.batch)


def _assert_scan_tables_identical(a, b):
    assert len(a) == len(b)
    for name in ("src_ip", "start", "end", "packets", "distinct_dsts",
                 "primary_port", "tool", "match_fraction", "speed_pps",
                 "coverage", "sequential", "window_mode", "ttl_mode"):
        assert np.array_equal(getattr(a, name), getattr(b, name)), name
    for pa, pb in zip(a.port_sets, b.port_sets):
        assert np.array_equal(pa, pb)


class TestWorkerDeterminism:
    def test_serial_matches_parallel(self):
        serial = _simulate(workers=0)
        for workers in (1, 4):
            parallel = _simulate(workers=workers)
            for year in YEARS:
                _assert_results_identical(serial[year], parallel[year])

    def test_scan_tables_identical_across_worker_counts(self):
        serial = _simulate(workers=0)
        parallel = _simulate(workers=4)
        for year in YEARS:
            _assert_scan_tables_identical(
                identify_scans(serial[year].batch),
                identify_scans(parallel[year].batch),
            )

    def test_year_order_is_irrelevant(self):
        forward = _simulate(workers=0, years=YEARS)
        shuffled = _simulate(workers=0, years=list(reversed(YEARS)))
        for year in YEARS:
            _assert_results_identical(forward[year], shuffled[year])

    def test_single_year_matches_decade_member(self):
        alone = _simulate(workers=0, years=[YEARS[-1]])
        together = _simulate(workers=0, years=YEARS)
        _assert_results_identical(alone[YEARS[-1]], together[YEARS[-1]])

    def test_parallel_results_share_parent_objects(self):
        world = TelescopeWorld(rng=SEED)
        results = world.simulate_years(
            YEARS, days=DAYS, max_packets=MAX_PACKETS, min_scans=MIN_SCANS,
            workers=2,
        )
        for result in results.values():
            assert result.telescope is world.telescope
            assert result.registry is world.registry

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            _simulate(workers=-1)

    def test_duplicate_years_simulated_once(self):
        results = _simulate(workers=0, years=[2020, 2020, 2015])
        assert sorted(results) == [2015, 2020]


class TestCaptureCache:
    def test_miss_then_hit(self, tmp_path):
        cache = CaptureCache(tmp_path / "cache")
        first = _simulate(workers=0, cache=cache)
        assert cache.hits == 0
        assert cache.misses == len(YEARS)
        assert all(not r.cache_hit for r in first.values())
        assert len(cache.entries()) == len(YEARS)

        second = _simulate(workers=0, cache=cache)
        assert cache.hits == len(YEARS)
        assert all(r.cache_hit for r in second.values())
        for year in YEARS:
            _assert_results_identical(first[year], second[year])

    def test_hit_attaches_live_world_objects(self, tmp_path):
        cache = CaptureCache(tmp_path / "cache")
        _simulate(workers=0, years=[2020], cache=cache)
        world = TelescopeWorld(rng=SEED)
        result = world.simulate_years(
            [2020], days=DAYS, max_packets=MAX_PACKETS, min_scans=MIN_SCANS,
            cache=cache,
        )[2020]
        assert result.cache_hit
        assert result.telescope is world.telescope
        assert result.registry is world.registry

    def test_key_sensitivity(self, tmp_path):
        cache = CaptureCache(tmp_path / "cache")
        world_a = TelescopeWorld(rng=SEED)
        world_b = TelescopeWorld(rng=SEED + 1)
        base = cache.key_for(world_a, 2020, days=DAYS,
                             max_packets=MAX_PACKETS, min_scans=MIN_SCANS)
        assert base == cache.key_for(world_a, 2020, days=DAYS,
                                     max_packets=MAX_PACKETS,
                                     min_scans=MIN_SCANS)
        others = {
            "seed": cache.key_for(world_b, 2020, days=DAYS,
                                  max_packets=MAX_PACKETS,
                                  min_scans=MIN_SCANS),
            "year": cache.key_for(world_a, 2015, days=DAYS,
                                  max_packets=MAX_PACKETS,
                                  min_scans=MIN_SCANS),
            "days": cache.key_for(world_a, 2020, days=DAYS + 1,
                                  max_packets=MAX_PACKETS,
                                  min_scans=MIN_SCANS),
            "budget": cache.key_for(world_a, 2020, days=DAYS,
                                    max_packets=MAX_PACKETS + 1,
                                    min_scans=MIN_SCANS),
        }
        assert base not in others.values()
        assert len(set(others.values())) == len(others)

    def test_parallel_run_populates_and_reuses_cache(self, tmp_path):
        cache = CaptureCache(tmp_path / "cache")
        first = _simulate(workers=2, cache=cache)
        warm = CaptureCache(tmp_path / "cache")
        second = _simulate(workers=2, cache=warm)
        assert warm.hits == len(YEARS)
        assert warm.misses == 0
        for year in YEARS:
            _assert_results_identical(first[year], second[year])

    def test_damaged_entry_is_a_miss(self, tmp_path):
        cache = CaptureCache(tmp_path / "cache")
        world = TelescopeWorld(rng=SEED)
        key = cache.key_for(world, 2020, days=DAYS, max_packets=MAX_PACKETS,
                            min_scans=MIN_SCANS)
        # A foreign trace squatting on the key's filename must be ignored.
        from repro.telescope.trace import write_trace
        from repro.telescope.packet import PacketBatch
        write_trace(cache.path_for(key), PacketBatch.empty(),
                    meta={"cache_key": "not-the-key"})
        assert cache.load(key, world) is None
        assert cache.misses == 1

    def test_clear(self, tmp_path):
        cache = CaptureCache(tmp_path / "cache")
        _simulate(workers=0, years=[2020], cache=cache)
        assert cache.clear() == 1
        assert cache.entries() == []


class TestCacheMaintenance:
    def _filled(self, tmp_path):
        cache = CaptureCache(tmp_path / "cache")
        _simulate(workers=0, cache=cache)  # one entry per year in YEARS
        return cache

    def test_usage_orders_lru_first(self, tmp_path):
        import os

        cache = self._filled(tmp_path)
        rows = cache.usage()
        assert len(rows) == len(YEARS)
        assert all(row.bytes > 0 for row in rows)
        # force a known order, then check it is honoured
        os.utime(rows[0].path, (2_000_000, 2_000_000))
        os.utime(rows[1].path, (1_000_000, 1_000_000))
        reordered = cache.usage()
        assert reordered[0].key == rows[1].key
        assert reordered[-1].key == rows[0].key
        assert cache.total_bytes() == sum(row.bytes for row in rows)

    def test_load_refreshes_lru_position(self, tmp_path):
        import os

        cache = self._filled(tmp_path)
        rows = cache.usage()
        for row, stamp in zip(rows, (1_000_000, 2_000_000)):
            os.utime(row.path, (stamp, stamp))
        oldest = cache.usage()[0]
        # a hit on the oldest entry must move it to most-recently-used
        world = TelescopeWorld(rng=SEED)
        year = next(
            y for y in YEARS
            if cache.key_for(world, y, days=DAYS, max_packets=MAX_PACKETS,
                             min_scans=MIN_SCANS) == oldest.key
        )
        assert cache.load(oldest.key, world) is not None
        assert cache.usage()[-1].key == oldest.key

    def test_prune_evicts_oldest_until_budget(self, tmp_path):
        import os

        cache = self._filled(tmp_path)
        rows = cache.usage()
        os.utime(rows[0].path, (1_000_000, 1_000_000))
        os.utime(rows[1].path, (2_000_000, 2_000_000))
        keep = rows[1]
        removed = cache.prune(max_bytes=keep.bytes)
        assert [row.key for row in removed] == [rows[0].key]
        assert not rows[0].path.exists()
        assert keep.path.exists()
        assert cache.total_bytes() <= keep.bytes
        # already within budget: nothing further happens
        assert cache.prune(max_bytes=keep.bytes) == []

    def test_prune_to_zero_clears_everything(self, tmp_path):
        cache = self._filled(tmp_path)
        removed = cache.prune(max_bytes=0)
        assert len(removed) == len(YEARS)
        assert cache.entries() == []
        with pytest.raises(ValueError):
            cache.prune(max_bytes=-1)
