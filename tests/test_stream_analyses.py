"""Streaming analyses vs the batch paper report.

The contract under test (see ``repro/stream/analyses.py``): the incremental
accumulators produce a :class:`~repro.core.report.PaperReport` that is
field-by-field — including every float — equal to the batch
:func:`~repro.core.report.paper_report`, at any window size and shard
count, across kill-and-resume, and within bounded memory.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import paper_report
from repro.stream import (
    AnalysisConfig,
    AnalysisSuite,
    BatchStreamSource,
    StreamOrderError,
    shard_of,
    stream_report,
)
from repro.telescope import PacketBatch, write_trace


def assert_reports_equal(actual, expected, path="report"):
    """Recursive exact equality over the report dataclass tree."""
    if dataclasses.is_dataclass(expected):
        assert type(actual) is type(expected), path
        for f in dataclasses.fields(expected):
            assert_reports_equal(
                getattr(actual, f.name), getattr(expected, f.name),
                f"{path}.{f.name}",
            )
    elif isinstance(expected, dict):
        assert set(actual) == set(expected), path
        for key in expected:
            assert_reports_equal(actual[key], expected[key], f"{path}[{key}]")
    elif isinstance(expected, (tuple, list)):
        assert len(actual) == len(expected), path
        for i, (a, e) in enumerate(zip(actual, expected)):
            assert_reports_equal(a, e, f"{path}[{i}]")
    elif isinstance(expected, np.ndarray):
        assert isinstance(actual, np.ndarray), path
        assert np.array_equal(actual, expected), path
    else:
        # Floats included: the streaming path promises *exact* equality.
        assert actual == expected, (path, actual, expected)


@pytest.fixture(scope="module")
def expected_report(analysis2020):
    return paper_report(analysis2020)


def windows_of(batch, size):
    """Split a batch into consecutive windows of ``size`` packets."""
    step = size or len(batch)
    for i in range(0, len(batch), step):
        mask = np.zeros(len(batch), dtype=bool)
        mask[i:i + step] = True
        yield batch.where(mask)


class TestSuiteEquivalence:
    """The suite alone, fed windows directly (no engine in the loop)."""

    @pytest.mark.parametrize("batch_size", [4096, 50_000, None])
    def test_any_window_size(self, analysis2020, expected_report, batch_size):
        suite = AnalysisSuite(
            AnalysisConfig(year=analysis2020.year, days=analysis2020.days)
        )
        for window in windows_of(analysis2020.batch, batch_size):
            suite.consume(window)
        suite.consume_scans(analysis2020.scans)
        assert_reports_equal(suite.finalize(), expected_report)

    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_source_disjoint_merge(
        self, analysis2020, expected_report, n_shards
    ):
        batch, scans = analysis2020.batch, analysis2020.scans
        config = AnalysisConfig(
            year=analysis2020.year, days=analysis2020.days
        )
        merged = AnalysisSuite(config)
        for shard in range(n_shards):
            part = AnalysisSuite(config)
            packet_mask = shard_of(batch.src_ip, n_shards) == shard
            for window in windows_of(batch, 8192):
                keep = shard_of(window.src_ip, n_shards) == shard
                part.consume(window.where(keep))
            part.consume_scans(
                scans.select(shard_of(scans.src_ip, n_shards) == shard)
            )
            assert packet_mask.sum() == part.packets_consumed
            merged.merge(part)
        assert merged.packets_consumed == len(batch)
        assert_reports_equal(merged.finalize(), expected_report)

    def test_merge_rejects_different_configs(self, analysis2020):
        a = AnalysisSuite(AnalysisConfig(year=2020, days=10))
        b = AnalysisSuite(AnalysisConfig(year=2021, days=10))
        with pytest.raises(ValueError, match="different configs"):
            a.merge(b)

    def test_out_of_order_window_rejected(self, analysis2020):
        suite = AnalysisSuite(
            AnalysisConfig(year=analysis2020.year, days=analysis2020.days)
        )
        batch = analysis2020.batch
        later = np.zeros(len(batch), dtype=bool)
        later[len(batch) // 2:] = True
        suite.consume(batch.where(later))
        with pytest.raises(StreamOrderError):
            suite.consume(batch.where(~later))


class TestSnapshotRestore:
    def test_midstream_roundtrip(self, analysis2020, expected_report):
        config = AnalysisConfig(
            year=analysis2020.year, days=analysis2020.days
        )
        suite = AnalysisSuite(config)
        windows = list(windows_of(analysis2020.batch, 16_384))
        for window in windows[: len(windows) // 2]:
            suite.consume(window)
        snapshot = suite.snapshot()

        restored = AnalysisSuite(config)
        restored.restore({k: v.copy() for k, v in snapshot.items()})
        for window in windows[len(windows) // 2:]:
            restored.consume(window)
        restored.consume_scans(analysis2020.scans)
        assert_reports_equal(restored.finalize(), expected_report)

    def test_snapshot_is_savez_safe(self, analysis2020, tmp_path):
        suite = AnalysisSuite(
            AnalysisConfig(year=analysis2020.year, days=analysis2020.days)
        )
        suite.consume(analysis2020.batch)
        suite.consume_scans(analysis2020.scans)
        path = tmp_path / "suite.npz"
        np.savez(path, **suite.snapshot())
        with np.load(path, allow_pickle=False) as payload:
            arrays = {name: payload[name] for name in payload.files}
        restored = AnalysisSuite(
            AnalysisConfig(year=analysis2020.year, days=analysis2020.days)
        )
        restored.restore(arrays)
        assert_reports_equal(
            restored.finalize(), paper_report(analysis2020)
        )


class TestStreamReport:
    """The full engine path: identification + analyses in one pass."""

    @pytest.mark.parametrize("batch_size,n_shards", [
        (4096, 1), (50_000, 1), (None, 1),
        (4096, 2), (None, 2), (8192, 4),
    ])
    def test_equals_batch_report(
        self, analysis2020, expected_report, batch_size, n_shards
    ):
        result = stream_report(
            BatchStreamSource(analysis2020.batch, batch_size=batch_size),
            year=analysis2020.year,
            days=analysis2020.days,
            n_shards=n_shards,
            batch_size=batch_size,
            classifier=analysis2020.classifier,
        )
        assert_reports_equal(result.report, expected_report)
        assert result.stats.analysis_state_bytes > 0

    def test_period_must_be_known(self, analysis2020):
        with pytest.raises(ValueError, match="year"):
            stream_report(
                BatchStreamSource(analysis2020.batch, batch_size=None)
            )

    def test_kill_and_resume(
        self, analysis2020, expected_report, tmp_path
    ):
        trace = tmp_path / "period.rtrace"
        write_trace(trace, analysis2020.batch, meta={
            "year": analysis2020.year, "days": analysis2020.days,
        })
        ckpt = tmp_path / "ckpt"

        class Killed(Exception):
            pass

        windows_seen = {"n": 0}

        def killer(stats):
            windows_seen["n"] += 1
            if windows_seen["n"] == 3:
                raise Killed()

        with pytest.raises(Killed):
            stream_report(
                trace, batch_size=16_384, checkpoint_dir=ckpt,
                checkpoint_every=1, progress=killer,
                classifier=analysis2020.classifier,
            )

        result = stream_report(
            trace, batch_size=16_384, checkpoint_dir=ckpt,
            classifier=analysis2020.classifier,
        )
        assert result.resumed
        assert result.stats.resumed_packets > 0
        assert_reports_equal(result.report, expected_report)

    def test_sharded_kill_and_resume(
        self, analysis2020, expected_report, tmp_path
    ):
        trace = tmp_path / "period.rtrace"
        write_trace(trace, analysis2020.batch, meta={
            "year": analysis2020.year, "days": analysis2020.days,
        })
        ckpt = tmp_path / "ckpt"

        class Killed(Exception):
            pass

        windows_seen = {"n": 0}

        def killer(shard, stats):
            windows_seen["n"] += 1
            if windows_seen["n"] == 3:
                raise Killed()

        with pytest.raises(Killed):
            stream_report(
                trace, batch_size=16_384, n_shards=2, checkpoint_dir=ckpt,
                checkpoint_every=1, progress=killer,
                classifier=analysis2020.classifier,
            )

        result = stream_report(
            trace, batch_size=16_384, n_shards=2, checkpoint_dir=ckpt,
            classifier=analysis2020.classifier,
        )
        assert result.resumed
        assert_reports_equal(result.report, expected_report)

    def test_analysis_checkpoint_does_not_collide_with_plain(
        self, analysis2020, tmp_path
    ):
        """A run with analyses keys its checkpoints separately: finishing a
        plain stream first must not satisfy (or poison) a report run."""
        from repro.stream import StreamConfig, StreamEngine, TraceStreamSource

        trace = tmp_path / "period.rtrace"
        write_trace(trace, analysis2020.batch, meta={
            "year": analysis2020.year, "days": analysis2020.days,
        })
        ckpt = tmp_path / "ckpt"
        config = StreamConfig(batch_size=16_384, checkpoint_dir=ckpt)
        plain = StreamEngine(config=config).run(
            TraceStreamSource(trace, batch_size=16_384)
        )
        result = stream_report(
            trace, batch_size=16_384, checkpoint_dir=ckpt,
            classifier=analysis2020.classifier,
        )
        assert not result.resumed  # distinct key -> fresh pass
        assert_reports_equal(
            result.report, paper_report(analysis2020)
        )
        assert len(plain.scans) == len(result.scans)


class TestBoundedMemory:
    def test_volatility_retires_closed_weeks(self):
        """On a long trace, only the watermark's weeks hold live source
        sets — per-week dedupe state must not accumulate over the run."""
        week_s = 7 * 86_400.0
        n_weeks = 30
        days = int(n_weeks * 7)
        gen = np.random.default_rng(5)
        suite = AnalysisSuite(AnalysisConfig(year=2020, days=days))

        per_week_state = []
        for week in range(n_weeks):
            n = 400
            times = np.sort(gen.uniform(week * week_s, (week + 1) * week_s, n))
            batch = PacketBatch(
                time=times,
                src_ip=(week * 10_000 + gen.integers(0, 3_000, n)).astype(
                    np.uint32
                ),
                dst_ip=gen.integers(0, 2**32, n, dtype=np.uint32),
                src_port=gen.integers(1024, 2**16, n).astype(np.uint16),
                dst_port=gen.integers(0, 2**16, n, dtype=np.uint16),
                ip_id=gen.integers(0, 2**16, n, dtype=np.uint16),
                seq=gen.integers(0, 2**32, n, dtype=np.uint32),
                ttl=gen.integers(32, 128, n).astype(np.uint8),
                window=gen.integers(0, 2**16, n, dtype=np.uint16),
                flags=np.full(n, 2, dtype=np.uint8),
            )
            suite.consume(batch)
            per_week_state.append(suite.volatility.open_week_count)

        # A window never spans a week here, so at most the current week is
        # open (plus, transiently, the one a boundary packet lands in).
        assert max(per_week_state) <= 2
        # The retired state lives in the sparse tallies, not source sets.
        assert suite.volatility.state_nbytes() < 2 * 1024 * 1024
