"""Tests for repro.stream — streaming ingestion and incremental analysis.

The load-bearing property is *stream equivalence*: the incremental
identifier must reproduce batch ``identify_scans`` column by column at any
window size, and still after a kill-and-resume through a checkpoint.
"""

import json

import numpy as np
import pytest

from repro import __version__ as repro_version
from repro.core.campaigns import CampaignCriteria, identify_scans
from repro.stream import (
    BatchStreamSource,
    CheckpointStore,
    CheckpointVersionError,
    STREAM_SCHEMA_VERSION,
    IncrementalScanIdentifier,
    IterStreamSource,
    StreamConfig,
    StreamEngine,
    StreamOrderError,
    StreamStats,
    TraceStreamSource,
    format_bytes,
    identify_scans_stream,
    peak_rss_bytes,
    rebatch,
)
from repro.telescope import PacketBatch, write_trace
from repro.telescope import trace as trace_module


def assert_tables_equal(actual, expected):
    """Column-by-column exact comparison of two ScanTables."""
    assert len(actual) == len(expected)
    for col in (
        "src_ip", "start", "end", "packets", "distinct_dsts", "primary_port",
        "match_fraction", "speed_pps", "coverage", "sequential",
        "window_mode", "ttl_mode",
    ):
        a = getattr(actual, col)
        b = getattr(expected, col)
        assert a.dtype == b.dtype, col
        assert np.array_equal(a, b), col
    assert [str(t) for t in actual.tool] == [str(t) for t in expected.tool]
    assert len(actual.port_sets) == len(expected.port_sets)
    for p, q in zip(actual.port_sets, expected.port_sets):
        assert p.dtype == q.dtype
        assert np.array_equal(p, q)


@pytest.fixture(scope="module")
def batch2020(sim2020):
    return sim2020.batch


@pytest.fixture(scope="module")
def scans2020(batch2020):
    return identify_scans(batch2020)


def ordered_batch(n=4000, sources=25, seed=3):
    """A small time-ordered batch with per-source packet runs."""
    gen = np.random.default_rng(seed)
    return PacketBatch(
        time=np.sort(gen.uniform(0, 5000, n)),
        src_ip=gen.integers(0, sources, n).astype(np.uint32),
        dst_ip=gen.integers(0, 2**32, n, dtype=np.uint32),
        src_port=gen.integers(1024, 2**16, n).astype(np.uint16),
        dst_port=gen.integers(0, 2**16, n, dtype=np.uint16),
        ip_id=gen.integers(0, 2**16, n, dtype=np.uint16),
        seq=gen.integers(0, 2**32, n, dtype=np.uint32),
        ttl=gen.integers(32, 128, n).astype(np.uint8),
        window=gen.integers(0, 2**16, n, dtype=np.uint16),
        flags=np.full(n, 2, dtype=np.uint8),
    )


class TestRebatch:
    def test_exact_window_sizes(self):
        batch = ordered_batch(1000)
        windows = list(rebatch(iter([batch]), batch_size=256))
        assert [len(w) for w in windows] == [256, 256, 256, 232]
        assert np.array_equal(
            PacketBatch.concat(windows).time, batch.time
        )

    def test_chunk_boundaries_invisible(self):
        batch = ordered_batch(1000)
        pieces = [batch[i:i + 97] for i in range(0, 1000, 97)]
        windows = list(rebatch(iter(pieces), batch_size=256))
        assert [len(w) for w in windows] == [256, 256, 256, 232]

    def test_time_window_alignment(self):
        batch = ordered_batch(2000)
        windows = list(rebatch(iter([batch]), batch_size=None, window_s=500.0))
        for w in windows:
            buckets = np.floor(w.time / 500.0)
            assert buckets.min() == buckets.max()
        assert sum(len(w) for w in windows) == 2000

    def test_never_emits_empty(self):
        windows = list(rebatch(iter([PacketBatch.empty()]), batch_size=10))
        assert windows == []

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            list(rebatch(iter([]), batch_size=0))
        with pytest.raises(ValueError):
            list(rebatch(iter([]), window_s=-1.0))

    def test_memoryless_resume(self):
        """Skipping N packets and re-batching reproduces the window tail."""
        batch = ordered_batch(1000)
        full = list(rebatch(iter([batch]), batch_size=256))
        skipped = list(rebatch(iter([batch[512:]]), batch_size=256))
        assert [len(w) for w in skipped] == [len(w) for w in full[2:]]
        assert np.array_equal(skipped[0].time, full[2].time)

    def test_exact_fit_chunk_is_zero_copy(self):
        """A chunk that exactly fills the window passes through as-is."""
        batch = ordered_batch(1024)
        chunks = [batch[i:i + 256] for i in range(0, 1024, 256)]
        windows = list(rebatch(iter(chunks), batch_size=256))
        assert len(windows) == 4
        for window, chunk in zip(windows, chunks):
            assert np.shares_memory(window.time, chunk.time)
            assert np.shares_memory(window.src_ip, chunk.src_ip)

    def test_split_views_share_memory(self):
        """Windows cut out of one larger chunk stay views into it."""
        batch = ordered_batch(1000)
        windows = list(rebatch(iter([batch]), batch_size=256))
        for window in windows:
            assert np.shares_memory(window.time, batch.time)

    def test_chunk_spanning_window_copies(self):
        """Only a window spanning two chunks concatenates (and thus copies)."""
        batch = ordered_batch(300)
        chunks = [batch[:200], batch[200:]]
        windows = list(rebatch(iter(chunks), batch_size=256))
        assert [len(w) for w in windows] == [256, 44]
        assert not np.shares_memory(windows[0].time, batch.time)
        assert np.shares_memory(windows[1].time, batch.time)


class TestStreamEquivalence:
    @pytest.mark.parametrize("batch_size", [4096, 50_000, None])
    def test_sim2020_column_equal(self, batch2020, scans2020, batch_size):
        table = identify_scans_stream(batch2020, batch_size=batch_size)
        assert_tables_equal(table, scans2020)

    def test_sim2020_time_windows(self, batch2020, scans2020):
        table = identify_scans_stream(
            batch2020, batch_size=8192, window_s=6 * 3600.0
        )
        assert_tables_equal(table, scans2020)

    def test_custom_criteria(self, batch2020):
        criteria = CampaignCriteria(min_distinct_dsts=50, min_rate_pps=10.0,
                                    expiry_s=900.0)
        table = identify_scans_stream(
            batch2020, criteria=criteria, batch_size=4096
        )
        assert_tables_equal(table, identify_scans(batch2020, criteria))

    def test_empty_stream(self):
        table = identify_scans_stream(PacketBatch.empty())
        assert len(table) == 0

    def test_single_window(self, batch2020, scans2020):
        source = IterStreamSource([batch2020], batch_size=None)
        assert_tables_equal(identify_scans_stream(source), scans2020)

    def test_trace_source(self, tmp_path, batch2020, scans2020):
        path = tmp_path / "cap.rtrace"
        write_trace(path, batch2020, meta={"year": 2020}, chunk_size=25_000)
        table = identify_scans_stream(str(path), batch_size=8192)
        assert_tables_equal(table, scans2020)

    def test_trace_source_mmap_modes(self, tmp_path, batch2020, scans2020):
        """Mapped and buffered reads produce the same table."""
        path = tmp_path / "cap.rtrace"
        write_trace(path, batch2020, meta={"year": 2020}, chunk_size=8192)
        table = identify_scans_stream(
            TraceStreamSource(path, batch_size=8192, mmap=False)
        )
        assert_tables_equal(table, scans2020)
        if trace_module.mmap_supported():
            table = identify_scans_stream(
                TraceStreamSource(path, batch_size=8192, mmap=True)
            )
            assert_tables_equal(table, scans2020)

    @pytest.mark.skipif(
        not trace_module.mmap_supported(), reason="platform has no mmap"
    )
    def test_mapped_windows_are_file_views(self, tmp_path, batch2020):
        """With chunk size == window size, the fused pass never copies:
        windows reaching the identifier are read-only views into the map."""
        path = tmp_path / "cap.rtrace"
        write_trace(path, batch2020, meta={"year": 2020}, chunk_size=8192)
        source = TraceStreamSource(path, batch_size=8192, mmap=True)
        windows = list(source.windows())
        assert sum(len(w) for w in windows) == len(batch2020)
        for window in windows:
            assert not window.time.flags.owndata
            assert not window.time.flags.writeable

    def test_out_of_order_rejected(self):
        batch = ordered_batch(200)
        identifier = IncrementalScanIdentifier()
        identifier.consume(batch[100:])
        with pytest.raises(StreamOrderError):
            identifier.consume(batch[:100])


class TestBoundedMemory:
    def test_sessions_finalise_as_stream_advances(self, batch2020):
        """Open-session state stays bounded: quiet sources retire mid-run."""
        identifier = IncrementalScanIdentifier()
        peaks = []
        for window in BatchStreamSource(batch2020, batch_size=8192).windows():
            identifier.consume(window)
            peaks.append(identifier.open_packets)
        # If no session ever finalised, open_packets would approach the
        # capture length; with one-hour expiry it must stay far below it.
        assert max(peaks) < len(batch2020)
        assert identifier.scans_found > 0  # scans finalised before the end
        assert identifier.buffered_bytes > 0
        identifier.finalize()
        assert identifier.open_sessions == 0
        assert identifier.buffered_bytes == 0

    def test_stats_surface_reports_memory(self, batch2020):
        engine = StreamEngine(config=StreamConfig(batch_size=8192))
        seen = []
        result = engine.run(
            BatchStreamSource(batch2020, batch_size=8192),
            progress=lambda stats: seen.append(stats.to_dict()),
        )
        assert result.stats.packets == len(batch2020)
        assert result.stats.peak_rss_bytes > 0
        assert result.stats.wall_s > 0
        assert result.stats.packets_per_s > 0
        assert any(s["open_sessions"] > 0 for s in seen)
        assert any(s["buffered_bytes"] > 0 for s in seen)
        # The bounded-memory claim in one number: sessions were buffered at
        # some point, and the high-water mark survives the final drain
        # (buffered_bytes itself is 0 again once every session retired).
        assert result.stats.peak_open_session_bytes > 0
        assert result.stats.peak_open_session_bytes >= max(
            s["buffered_bytes"] for s in seen
        )
        assert result.stats.to_dict()["peak_open_session_bytes"] > 0
        line = result.stats.summary_line()
        assert "packets" in line and "RSS" in line


class TestCheckpointResume:
    def _trace(self, tmp_path, batch):
        path = tmp_path / "cap.rtrace"
        write_trace(path, batch, meta={"year": 2020}, chunk_size=10_000)
        return path

    def test_kill_and_resume_round_trip(self, tmp_path, batch2020, scans2020):
        path = self._trace(tmp_path, batch2020)
        config = StreamConfig(
            batch_size=8192, checkpoint_dir=tmp_path / "ckpt",
            checkpoint_every=1,
        )

        class Killed(Exception):
            pass

        windows_before_kill = 3
        calls = []

        def killer(stats):
            calls.append(stats.windows)
            if len(calls) >= windows_before_kill:
                raise Killed

        with pytest.raises(Killed):
            StreamEngine(config=config).run(
                TraceStreamSource(path, batch_size=8192), progress=killer
            )

        result = StreamEngine(config=config).run(
            TraceStreamSource(path, batch_size=8192)
        )
        assert result.resumed
        assert result.stats.resumed_packets == windows_before_kill * 8192
        assert_tables_equal(result.scans, scans2020)

    def test_graceful_stop_flushes_checkpoint_and_resumes(
        self, tmp_path, batch2020, scans2020
    ):
        """A ``stop`` callback ends the run between windows with the final
        checkpoint flushed; the next run resumes and finishes identically.
        """
        path = self._trace(tmp_path, batch2020)
        config = StreamConfig(
            batch_size=8192, checkpoint_dir=tmp_path / "ckpt",
            checkpoint_every=100,  # force the flush to come from the stop
        )
        windows = []

        def stop():
            windows.append(None)
            return len(windows) >= 3

        first = StreamEngine(config=config).run(
            TraceStreamSource(path, batch_size=8192), stop=stop
        )
        assert first.interrupted
        assert first.stats.packets == 3 * 8192
        assert first.checkpoint_path is not None
        assert first.checkpoint_path.exists()

        second = StreamEngine(config=config).run(
            TraceStreamSource(path, batch_size=8192)
        )
        assert second.resumed and not second.interrupted
        assert second.stats.resumed_packets == 3 * 8192
        assert_tables_equal(second.scans, scans2020)

    def test_stop_never_true_is_inert(self, tmp_path, batch2020, scans2020):
        path = self._trace(tmp_path, batch2020)
        config = StreamConfig(batch_size=16_384,
                              checkpoint_dir=tmp_path / "ckpt")
        result = StreamEngine(config=config).run(
            TraceStreamSource(path, batch_size=16_384), stop=lambda: False
        )
        assert not result.interrupted
        assert_tables_equal(result.scans, scans2020)

    def test_rerun_after_completion_is_cheap(self, tmp_path, batch2020,
                                             scans2020):
        path = self._trace(tmp_path, batch2020)
        config = StreamConfig(batch_size=16_384,
                              checkpoint_dir=tmp_path / "ckpt")
        first = StreamEngine(config=config).run(
            TraceStreamSource(path, batch_size=16_384)
        )
        again = StreamEngine(config=config).run(
            TraceStreamSource(path, batch_size=16_384)
        )
        assert not first.resumed and again.resumed
        assert again.stats.resumed_packets == len(batch2020)
        assert_tables_equal(again.scans, first.scans)
        assert_tables_equal(again.scans, scans2020)

    def test_key_separates_configurations(self, tmp_path, batch2020):
        path = self._trace(tmp_path, batch2020)
        store = CheckpointStore(tmp_path / "ckpt")
        source = TraceStreamSource(path, batch_size=8192)
        from repro.core.fingerprints import ToolFingerprinter

        fp = ToolFingerprinter()
        base = store.key_for(source.identity(), CampaignCriteria(), fp, 8192, None)
        other_batch = store.key_for(
            source.identity(), CampaignCriteria(), fp, 4096, None
        )
        other_criteria = store.key_for(
            source.identity(), CampaignCriteria(min_rate_pps=10.0), fp, 8192, None
        )
        assert len({base, other_batch, other_criteria}) == 3

    def test_stale_checkpoint_ignored(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        identifier = IncrementalScanIdentifier()
        identifier.consume(ordered_batch(500))
        store.save("abc123", identifier.snapshot())
        assert store.load("abc123") is not None
        # A key mismatch (file renamed / squatting) is a miss, not an error.
        path = store.path_for("abc123")
        path.rename(store.path_for("def456"))
        assert store.load("def456") is None

    def test_version_mismatch_names_both_versions_and_path(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        identifier = IncrementalScanIdentifier()
        identifier.consume(ordered_batch(500))
        path = store.save("abc123", identifier.snapshot())

        # Rewrite the embedded meta as if an older build had written it.
        with np.load(path, allow_pickle=False) as payload:
            arrays = {name: payload[name] for name in payload.files}
        meta = json.loads(str(arrays["checkpoint_meta"]))
        meta["schema"], meta["version"] = 0, "0.0.1"
        arrays["checkpoint_meta"] = np.array(json.dumps(meta, sort_keys=True))
        with open(path, "wb") as fh:
            np.savez(fh, **arrays)

        # Default: a miss, with the reason recorded on the store.
        assert store.load("abc123") is None
        message = store.last_mismatch
        assert message is not None
        assert str(path) in message
        assert "schema 0" in message and "'0.0.1'" in message
        assert f"schema {STREAM_SCHEMA_VERSION!r}" in message
        assert repro_version in message

        # strict=True: same message, raised.
        with pytest.raises(CheckpointVersionError) as excinfo:
            store.load("abc123", strict=True)
        assert str(excinfo.value) == message

        # A successful load clears the recorded mismatch.
        good = store.save("good", identifier.snapshot())
        assert good.exists()
        assert store.load("good") is not None
        assert store.last_mismatch is None

    def test_snapshot_restore_round_trip(self, batch2020, scans2020):
        source = BatchStreamSource(batch2020, batch_size=8192)
        identifier = IncrementalScanIdentifier()
        windows = list(source.windows())
        for window in windows[:4]:
            identifier.consume(window)
        arrays = identifier.snapshot()
        clone = IncrementalScanIdentifier()
        clone.restore({k: np.asarray(v) for k, v in arrays.items()})
        assert clone.packets_consumed == identifier.packets_consumed
        assert clone.open_sessions == identifier.open_sessions
        assert clone.buffered_bytes > 0
        for window in windows[4:]:
            clone.consume(window)
        assert_tables_equal(clone.finalize(), scans2020)


class TestStats:
    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.0 KB"
        assert format_bytes(5 * 1024**2) == "5.0 MB"

    def test_peak_rss_positive_on_posix(self):
        assert peak_rss_bytes() >= 0

    def test_progress_line_renders(self):
        stats = StreamStats(packets=1000, windows=2, wall_s=0.5)
        assert "w=2" in stats.progress_line()
        assert "packets=1,000" in stats.progress_line()
