"""Property-based invariants of the analysis pipeline.

These pin down behaviours that must hold for *any* input: threshold
soundness of campaign identification, invariance under time translation and
packet reordering, and fingerprint stability.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.campaigns import CampaignCriteria, identify_scans
from repro.telescope.packet import PacketBatch


def random_batch(seed, n_sources=5, packets_per_source=150, duration=300.0):
    gen = np.random.default_rng(seed)
    total = n_sources * packets_per_source
    src = np.repeat(
        gen.integers(1, 2**31, n_sources, dtype=np.uint32), packets_per_source
    )
    return PacketBatch(
        time=gen.uniform(0, duration, total),
        src_ip=src,
        dst_ip=gen.integers(0x64400000, 0x64430000, total, dtype=np.uint32),
        src_port=gen.integers(1024, 65535, total, dtype=np.uint16),
        dst_port=gen.choice(
            np.array([22, 80, 443, 8080], dtype=np.uint16), total
        ),
        ip_id=gen.integers(0, 2**16, total, dtype=np.uint16),
        seq=gen.integers(0, 2**32, total, dtype=np.uint32),
        ttl=np.full(total, 52, dtype=np.uint8),
        window=np.full(total, 1024, dtype=np.uint16),
        flags=np.full(total, 2, dtype=np.uint8),
    ).sorted_by_time()


class TestThresholdSoundness:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_every_scan_satisfies_thresholds(self, seed):
        batch = random_batch(seed)
        criteria = CampaignCriteria()
        scans = identify_scans(batch, criteria=criteria)
        for i in range(len(scans)):
            assert scans.distinct_dsts[i] >= criteria.min_distinct_dsts
            assert scans.speed_pps[i] >= criteria.min_rate_pps
            assert scans.packets[i] >= scans.distinct_dsts[i]
            assert scans.end[i] >= scans.start[i]
            assert scans.n_ports[i] >= 1
            assert 0 < scans.coverage[i] <= 1

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_scan_packets_bounded_by_batch(self, seed):
        batch = random_batch(seed)
        scans = identify_scans(batch)
        assert scans.packets.sum() <= len(batch)


class TestInvariances:
    @given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    @settings(max_examples=10, deadline=None)
    def test_time_translation(self, offset):
        """Shifting all timestamps must not change any scan statistic."""
        batch = random_batch(7)
        cols = batch.columns()
        cols["time"] = cols["time"] + offset
        shifted = PacketBatch(**cols)

        a = identify_scans(batch)
        b = identify_scans(shifted)
        assert len(a) == len(b)
        assert np.array_equal(a.src_ip, b.src_ip)
        assert np.array_equal(a.packets, b.packets)
        assert np.allclose(a.speed_pps, b.speed_pps, rtol=1e-9)
        assert np.allclose(b.start - a.start, offset, atol=1e-6)

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_packet_order_irrelevant(self, seed):
        """identify_scans must not depend on the batch's storage order."""
        batch = random_batch(11)
        gen = np.random.default_rng(seed)
        perm = gen.permutation(len(batch))
        shuffled = batch[perm]

        a = identify_scans(batch)
        b = identify_scans(shuffled)
        assert len(a) == len(b)
        order_a = np.argsort(a.src_ip, kind="stable")
        order_b = np.argsort(b.src_ip, kind="stable")
        assert np.array_equal(a.src_ip[order_a], b.src_ip[order_b])
        assert np.array_equal(a.packets[order_a], b.packets[order_b])
        assert list(map(str, a.tool[order_a])) == list(map(str, b.tool[order_b]))

    def test_subset_monotonicity(self):
        """Dropping a source removes exactly its scans, nothing else."""
        batch = random_batch(13)
        scans = identify_scans(batch)
        assert len(scans) > 0
        victim = int(scans.src_ip[0])
        reduced = batch.where(batch.src_ip != victim)
        remaining = identify_scans(reduced)
        assert victim not in set(remaining.src_ip.tolist())
        kept = scans.select(scans.src_ip != victim)
        assert np.array_equal(
            np.sort(kept.src_ip), np.sort(remaining.src_ip)
        )


class TestFingerprintStability:
    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_tool_verdicts_stable_under_shuffle(self, seed):
        """Single-packet fingerprints are order-independent; pairwise ones
        (NMap/Unicorn) hold for arbitrary packet pairs of a session, so a
        reshuffle may not flip any verdict."""
        from repro.scanners import MasscanModel, MiraiModel, NMapModel
        from repro.core.fingerprints import ToolFingerprinter

        gen = np.random.default_rng(seed)
        dip = gen.integers(0, 2**32, 120, dtype=np.uint32)
        dpt = gen.integers(1, 2**16, 120, dtype=np.uint16)
        fingerprinter = ToolFingerprinter()
        for model in (MasscanModel(rng=seed), MiraiModel(rng=seed),
                      NMapModel(rng=seed)):
            fields = model.craft(dip, dpt)
            perm = gen.permutation(120)
            original = fingerprinter.fingerprint_arrays(
                fields.ip_id, fields.seq, dip, dpt, fields.src_port
            )
            shuffled = fingerprinter.fingerprint_arrays(
                fields.ip_id[perm], fields.seq[perm], dip[perm], dpt[perm],
                fields.src_port[perm],
            )
            assert original.tool == shuffled.tool
