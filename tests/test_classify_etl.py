"""Unit tests for the scanner classifier and the Appendix-A ETL pipeline."""

import numpy as np
import pytest

from repro.enrichment import (
    AllocationType,
    Attribution,
    DataSource,
    EtlPipeline,
    ScannerClassifier,
    ScannerType,
    SourceRecord,
    Warehouse,
    synthesise_sources,
)
from repro.enrichment.etl import _keywordise


class TestClassifier:
    @pytest.mark.parametrize("alloc,expected", [
        (AllocationType.HOSTING, ScannerType.HOSTING),
        (AllocationType.ENTERPRISE, ScannerType.ENTERPRISE),
        (AllocationType.RESIDENTIAL, ScannerType.RESIDENTIAL),
        (AllocationType.UNKNOWN, ScannerType.UNKNOWN),
    ])
    def test_alloc_type_mapping(self, classifier, registry, rng, alloc, expected):
        ips = registry.sample_addresses(rng, 30, alloc_type=alloc)
        got = classifier.classify_array(ips)
        assert all(g == expected for g in got)

    def test_feed_overrides_to_institutional(self, classifier, registry, rng):
        ips = registry.sample_addresses(rng, 10, organisation="Censys")
        got = classifier.classify_array(ips)
        assert all(g == ScannerType.INSTITUTIONAL for g in got)

    def test_unallocated_is_unknown(self, classifier):
        got = classifier.classify_array(np.array([1], dtype=np.uint32))
        assert got[0] == ScannerType.UNKNOWN

    def test_classify_single_full_record(self, classifier, registry, rng):
        ip = int(registry.sample_addresses(rng, 1, organisation="Shodan")[0])
        verdict = classifier.classify(ip)
        assert verdict.scanner_type == ScannerType.INSTITUTIONAL
        assert verdict.organisation == "Shodan"
        assert verdict.country == "US"
        assert verdict.asn >= 60000


class TestKeywordise:
    def test_multiword_actor(self):
        kws = _keywordise("Palo Alto Networks")
        assert "palo alto networks" in kws
        assert "paloaltonetworks" in kws

    def test_short_keywords_dropped(self):
        assert all(len(k) >= 4 for k in _keywordise("Ab"))

    def test_empty(self):
        assert _keywordise("") == []


class TestWarehouse:
    def test_phase1_wins_over_phase2(self):
        wh = Warehouse()
        wh.load(Attribution(5, "OrgB", "src", phase=2))
        wh.load(Attribution(5, "OrgA", "src", phase=1))
        assert wh.actor_of(5) == "OrgA"
        # Later phase-2 evidence must not displace phase-1.
        wh.load(Attribution(5, "OrgC", "src", phase=2))
        assert wh.actor_of(5) == "OrgA"

    def test_actors_sorted(self):
        wh = Warehouse()
        wh.load(Attribution(1, "Zeta", "s", 1))
        wh.load(Attribution(2, "Alpha", "s", 1))
        assert wh.actors() == ("Alpha", "Zeta")


class TestEtlPipeline:
    def test_requires_sources(self):
        with pytest.raises(ValueError):
            EtlPipeline([])

    def test_phase1_direct_match(self):
        src = DataSource("greynoise", [SourceRecord(ip=42, actor="Censys")])
        wh = EtlPipeline([src]).run([42])
        assert wh.actor_of(42) == "Censys"
        assert wh.attributions()[0].phase == 1

    def test_phase2_keyword_match(self):
        sources = [
            DataSource("greynoise", [SourceRecord(ip=0, actor="Censys")]),
            DataSource("censys-api", [SourceRecord(ip=42, fields={
                "reverse_dns": "scan-3.censys.example"})]),
        ]
        wh = EtlPipeline(sources).run([42])
        att = wh.attributions()[0]
        assert att.actor == "Censys"
        assert att.phase == 2
        assert att.matched_field == "reverse_dns"

    def test_field_priority_order(self):
        """WHOIS handle outranks reverse DNS when both match."""
        sources = [
            DataSource("seed", [SourceRecord(ip=0, actor="Rapid7"),
                                SourceRecord(ip=0, actor="Censys")]),
            DataSource("censys-api", [SourceRecord(ip=9, fields={
                "whois_handle": "RAPID7-NET",
                "reverse_dns": "x.censys.example",
            })]),
        ]
        wh = EtlPipeline(sources).run([9])
        assert wh.actor_of(9) == "Rapid7"

    def test_unobserved_ips_not_attributed(self):
        src = DataSource("greynoise", [SourceRecord(ip=42, actor="Censys")])
        wh = EtlPipeline([src]).run([7])
        assert len(wh) == 0

    def test_manual_keywords(self):
        sources = [DataSource("rdns", [SourceRecord(ip=5, fields={
            "reverse_dns": "probe.specialscanner.example"})])]
        wh = EtlPipeline(sources,
                         manual_keywords={"specialscanner": "Special Org"}).run([5])
        assert wh.actor_of(5) == "Special Org"

    def test_synthetic_sources_high_recall_no_fp(self, registry, feed, rng):
        known = list(registry.sample_addresses(rng, 150,
                                               alloc_type=AllocationType.INSTITUTIONAL))
        other = list(registry.sample_addresses(rng, 80,
                                               alloc_type=AllocationType.RESIDENTIAL))
        sources = synthesise_sources(registry, feed, known + other, rng=3,
                                     direct_fraction=0.5)
        wh = EtlPipeline(sources).run(known + other)
        matched = sum(1 for ip in known if wh.actor_of(ip))
        false_pos = sum(1 for ip in other if wh.actor_of(ip))
        assert matched / len(known) > 0.95
        assert false_pos == 0

    def test_synthetic_sources_attribution_correct(self, registry, feed, rng):
        ips = list(registry.sample_addresses(rng, 60, organisation="LeakIX"))
        sources = synthesise_sources(registry, feed, ips, rng=1, direct_fraction=0.3)
        wh = EtlPipeline(sources).run(ips)
        actors = {wh.actor_of(ip) for ip in ips if wh.actor_of(ip)}
        assert actors == {"LeakIX"}
