"""Tests for scanner-type classification analyses (Table 2, Figs 5/7) and
geography (§5.4), run on the shared 2020 simulation."""

import numpy as np
import pytest

from repro.core.classification import (
    capability_by_type,
    institutional_speed_ratio,
    port_type_distribution,
    type_shares,
)
from repro.core.geography import (
    biased_port_counts_by_country,
    country_shares,
    port_country_share,
    port_origin_biases,
    space_normalised_shares,
    tool_country_shares,
)
from repro.core.institutions import known_scanner_share, org_footprints
from repro.enrichment.types import SCANNER_TYPE_ORDER, ScannerType
from repro.scanners import Tool


class TestTypeShares:
    def test_rows_cover_all_types(self, analysis2020):
        rows = type_shares(analysis2020)
        assert [r.scanner_type for r in rows] == list(SCANNER_TYPE_ORDER)

    def test_shares_normalised(self, analysis2020):
        rows = type_shares(analysis2020)
        assert sum(r.sources for r in rows) == pytest.approx(1.0, abs=1e-6)
        assert sum(r.scans for r in rows) == pytest.approx(1.0, abs=1e-6)
        assert sum(r.packets for r in rows) == pytest.approx(1.0, abs=1e-6)

    def test_residential_dominates_sources(self, analysis2020):
        """Table 2: residential space holds the majority of source IPs."""
        rows = {r.scanner_type: r for r in type_shares(analysis2020)}
        assert rows[ScannerType.RESIDENTIAL].sources > 0.4

    def test_institutional_tiny_sources_large_packets(self, analysis2020):
        """Table 2: 0.16% of sources but ~33% of packets."""
        rows = {r.scanner_type: r for r in type_shares(analysis2020)}
        inst = rows[ScannerType.INSTITUTIONAL]
        assert inst.sources < 0.02
        assert inst.packets > 5 * inst.sources

    def test_hosting_packets_exceed_sources(self, analysis2020):
        """Table 2: hosting is packet-heavy relative to its source count."""
        rows = {r.scanner_type: r for r in type_shares(analysis2020)}
        hosting = rows[ScannerType.HOSTING]
        assert hosting.packets > hosting.sources


class TestPortTypeDistribution:
    def test_top_ports_have_distributions(self, analysis2020):
        dist = port_type_distribution(analysis2020, top_n=10)
        assert len(dist) == 10
        for port, mix in dist.items():
            assert sum(mix.values()) == pytest.approx(1.0, abs=1e-6)

    def test_https_institutional_heavy(self, analysis2020):
        """Figure 5: 443 is disproportionately institutional."""
        dist = port_type_distribution(analysis2020, top_n=15)
        if 443 in dist:
            inst_443 = dist[443][ScannerType.INSTITUTIONAL]
            other = [mix[ScannerType.INSTITUTIONAL]
                     for port, mix in dist.items() if port not in (443, 3390)]
            assert inst_443 > np.mean(other)


class TestCapabilities:
    def test_all_present_types_covered(self, analysis2020):
        caps = capability_by_type(analysis2020)
        assert ScannerType.INSTITUTIONAL in caps
        assert ScannerType.RESIDENTIAL in caps

    def test_institutional_fastest(self, analysis2020):
        """Figure 7 / §6.8: institutional scanners are far faster."""
        caps = capability_by_type(analysis2020)
        inst = caps[ScannerType.INSTITUTIONAL].speed.mean_pps
        res = caps[ScannerType.RESIDENTIAL].speed.mean_pps
        assert inst > 10 * res

    def test_institutional_1000pps_fraction(self, analysis2020):
        """§6.8: 84% of institutional scans exceed 1,000 pps; only 12% of
        residential ones do."""
        caps = capability_by_type(analysis2020)
        assert caps[ScannerType.INSTITUTIONAL].speed.fraction_over_1000pps > 0.6
        assert caps[ScannerType.RESIDENTIAL].speed.fraction_over_1000pps < 0.35

    def test_institutional_coverage_highest(self, analysis2020):
        caps = capability_by_type(analysis2020)
        inst_cov = caps[ScannerType.INSTITUTIONAL].coverage.mean
        res_cov = caps[ScannerType.RESIDENTIAL].coverage.mean
        assert inst_cov > res_cov

    def test_speed_ratio_large(self, analysis2020):
        """§6.8: institutions scan ~92× faster than the average scanner."""
        ratio = institutional_speed_ratio(analysis2020)
        assert ratio > 8


class TestGeography:
    def test_country_shares_normalised(self, analysis2020):
        for weight in ("scans", "packets", "sources"):
            shares = country_shares(analysis2020, weight=weight)
            assert sum(shares.values()) == pytest.approx(1.0, abs=1e-6)

    def test_invalid_weight(self, analysis2020):
        with pytest.raises(ValueError):
            country_shares(analysis2020, weight="bogus")

    def test_china_prominent_2020(self, analysis2020):
        shares = country_shares(analysis2020, weight="scans")
        assert shares.get("CN", 0) > 0.05

    def test_rdp_mysql_china_bias(self, world):
        """§5.4: RDP (3389) / MySQL (3306) scanning predominantly from China.

        Tested at the generator level with a statistically meaningful draw:
        the per-port origin override must dominate the cohort's own country
        mix.
        """
        import collections
        from repro.simulation import year_config
        cfg = year_config(2020)
        rng = np.random.default_rng(7)
        for port in (3389, 3306):
            draws = collections.Counter(
                world._campaign_country(cfg, cfg.cohorts[0], port, rng)
                for _ in range(300)
            )
            assert draws.most_common(1)[0][0] == "CN"
            assert draws["CN"] / 300 > 0.45

    def test_port_origin_biases_structure(self, analysis2020):
        biases = port_origin_biases(analysis2020, min_share=0.8, min_packets=30)
        for bias in biases:
            assert bias.share >= 0.8
            assert 0 < bias.port < 65536
        counts = biased_port_counts_by_country(biases)
        assert sum(counts.values()) == len(biases)

    def test_min_share_validation(self, analysis2020):
        with pytest.raises(ValueError):
            port_origin_biases(analysis2020, min_share=0.4)

    def test_tool_country_shares(self, analysis2020):
        zmap_geo = tool_country_shares(analysis2020, Tool.ZMAP)
        if zmap_geo:
            assert sum(zmap_geo.values()) == pytest.approx(1.0, abs=1e-6)
            # §6.5: ZMap almost exclusively from China and the US.
            assert zmap_geo.get("CN", 0) + zmap_geo.get("US", 0) > 0.4

    def test_space_normalised_shares(self, analysis2020):
        normalised = space_normalised_shares(analysis2020)
        assert normalised
        assert all(v >= 0 for v in normalised.values())


class TestInstitutions:
    def test_org_footprints_known_only(self, analysis2020):
        footprints = org_footprints(analysis2020)
        assert footprints
        feed_orgs = set(analysis2020.classifier.feed.organisations())
        assert set(footprints) <= feed_orgs

    def test_footprint_fields_consistent(self, analysis2020):
        for fp in org_footprints(analysis2020).values():
            assert fp.distinct_ports == fp.ports.size
            assert fp.port_coverage == pytest.approx(fp.distinct_ports / 65536)
            assert fp.sources >= 1
            assert fp.packets >= fp.distinct_ports  # at least one pkt per port

    def test_known_scanner_share(self, analysis2020):
        share = known_scanner_share(analysis2020)
        assert share.organisations >= 10
        assert share.source_share < 0.05          # ~0.4% in the paper
        assert share.packet_share > 0.05          # packets far outweigh sources
        assert share.packet_share > share.source_share
