"""Tests for backscatter generation and the §3.1/§3.2 separation claims."""

import numpy as np
import pytest

from repro.simulation.backscatter import (
    ATTACKED_SERVICE_WEIGHTS,
    AttackSpec,
    sample_attacks,
    synthesize_backscatter,
)
from repro.telescope.packet import FLAG_ACK, FLAG_RST, FLAG_SYN


class TestSampleAttacks:
    def test_budget_roughly_met(self, registry, rng):
        attacks = sample_attacks(registry, 50_000, 86_400.0, rng=rng)
        total = sum(a.telescope_hits for a in attacks)
        assert 0.8 * 50_000 < total < 1.3 * 50_000

    def test_heavy_tail(self, registry, rng):
        attacks = sample_attacks(registry, 100_000, 86_400.0, rng=rng)
        sizes = sorted(a.telescope_hits for a in attacks)
        # The top decile carries far more than its proportional share.
        top = sum(sizes[-len(sizes) // 10:])
        assert top > 0.35 * sum(sizes)

    def test_zero_budget(self, registry, rng):
        assert sample_attacks(registry, 0, 86_400.0, rng=rng) == []

    def test_service_ports_from_catalogue(self, registry, rng):
        attacks = sample_attacks(registry, 20_000, 86_400.0, rng=rng)
        allowed = {p for p, _ in ATTACKED_SERVICE_WEIGHTS}
        assert {a.service_port for a in attacks} <= allowed

    def test_durations_within_period(self, registry, rng):
        period = 86_400.0
        for a in sample_attacks(registry, 20_000, period, rng=rng):
            assert 0 <= a.start < period


class TestSynthesize:
    def test_flags_are_backscatter(self, registry, telescope, rng):
        attacks = sample_attacks(registry, 5_000, 86_400.0, rng=rng)
        batch = synthesize_backscatter(attacks, telescope, rng=rng)
        assert len(batch) > 0
        syn_only = batch.flags == FLAG_SYN
        assert not syn_only.any()
        valid = {FLAG_SYN | FLAG_ACK, FLAG_RST | FLAG_ACK}
        assert set(np.unique(batch.flags).tolist()) <= valid

    def test_source_is_victim_service(self, registry, telescope, rng):
        attacks = [AttackSpec(victim_ip=123456, service_port=443,
                              start=0.0, duration=100.0, telescope_hits=50)]
        batch = synthesize_backscatter(attacks, telescope, rng=rng)
        assert np.all(batch.src_ip == 123456)
        assert np.all(batch.src_port == 443)

    def test_destinations_monitored(self, registry, telescope, rng):
        attacks = sample_attacks(registry, 3_000, 86_400.0, rng=rng)
        batch = synthesize_backscatter(attacks, telescope, rng=rng)
        assert np.all(telescope.monitored.contains_array(batch.dst_ip))

    def test_empty_attacks(self, telescope, rng):
        assert len(synthesize_backscatter([], telescope, rng=rng)) == 0

    def test_period_censoring(self, registry, telescope, rng):
        attacks = [AttackSpec(victim_ip=9, service_port=80, start=0.0,
                              duration=1000.0, telescope_hits=500)]
        batch = synthesize_backscatter(attacks, telescope, rng=rng,
                                       period_end=500.0)
        assert batch.time.max() < 500.0
        assert len(batch) < 500


class TestSeparationEndToEnd:
    def test_98_percent_syn_scans(self, sim2020):
        """§3.1: ~98% of unsolicited TCP traffic consists of SYN scans."""
        share = sim2020.syn_scan_share()
        assert 0.96 < share < 0.995

    def test_backscatter_not_in_scan_view(self, sim2020):
        assert np.all(sim2020.batch.flags == FLAG_SYN)
        assert sim2020.backscatter_packets > 0

    def test_sensor_accounting_matches(self, sim2020):
        assert sim2020.telescope.stats.backscatter >= sim2020.backscatter_packets
