"""Unit tests for cross-year trend analyses."""

import numpy as np
import pytest

from repro.core.campaigns import ScanTable
from repro.core.trends import (
    ConcentrationReport,
    classic_port_share_trend,
    concentration_from_packets,
    country_distribution_entropy,
    metric_trend,
    port_distribution_entropy,
    port_rank_stability,
    port_share,
    traffic_concentration,
)
from repro.scanners import Tool


def table_with_packets(packet_counts):
    n = len(packet_counts)
    return ScanTable(
        src_ip=np.arange(1000, 1000 + n, dtype=np.uint32),
        start=np.zeros(n),
        end=np.full(n, 60.0),
        packets=np.array(packet_counts, dtype=np.int64),
        distinct_dsts=np.full(n, 150, dtype=np.int64),
        port_sets=[np.array([80], dtype=np.int64)] * n,
        primary_port=np.full(n, 80, dtype=np.uint16),
        tool=np.array([Tool.UNKNOWN] * n, dtype=object),
        match_fraction=np.ones(n),
        speed_pps=np.full(n, 500.0),
        coverage=np.full(n, 0.01),
    )


class TestPortShare:
    def test_share_on_analysis(self, analysis2020):
        share = port_share(analysis2020, [80, 8080])
        manual = np.isin(analysis2020.study_batch.dst_port, [80, 8080]).mean()
        assert share == pytest.approx(float(manual))

    def test_share_of_everything_is_one(self, analysis2020):
        all_ports = np.unique(analysis2020.study_batch.dst_port).tolist()
        assert port_share(analysis2020, all_ports) == pytest.approx(1.0)

    def test_trend_mapping(self, analysis2020):
        shares = classic_port_share_trend({2020: analysis2020})
        assert set(shares) == {2020}
        assert 0 <= shares[2020] <= 1


class TestEntropy:
    def test_port_entropy_positive(self, analysis2020):
        assert port_distribution_entropy(analysis2020) > 1.0

    def test_country_entropy_positive(self, analysis2020):
        assert country_distribution_entropy(analysis2020) > 1.0

    def test_entropy_bounded_by_uniform(self, analysis2020):
        n_ports = np.unique(analysis2020.study_batch.dst_port).size
        assert port_distribution_entropy(analysis2020) <= np.log2(n_ports) + 1e-9


class TestRankStability:
    def test_identical_periods(self, analysis2020):
        assert port_rank_stability(analysis2020, analysis2020) == pytest.approx(1.0)


class TestConcentration:
    def test_uniform_scans_low_gini(self):
        report = traffic_concentration(table_with_packets([100] * 50))
        assert report.gini == pytest.approx(0.0, abs=1e-9)
        assert report.top_10pct_share == pytest.approx(0.10)
        assert report.share_for_80pct == pytest.approx(0.80)

    def test_one_giant_scan(self):
        report = traffic_concentration(table_with_packets([10_000] + [10] * 99))
        assert report.gini > 0.8
        assert report.top_1pct_share > 0.9
        assert report.share_for_80pct <= 0.02

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            traffic_concentration(ScanTable.empty())

    def test_cumulative_shares_monotone(self):
        report = traffic_concentration(table_with_packets(
            np.random.default_rng(0).pareto(1.1, 200) * 100 + 100
        ))
        assert report.top_1pct_share <= report.top_10pct_share <= 1.0

    @pytest.mark.parametrize("packets", [
        [1e16] + [1.0] * 1000,          # head dwarfs an exact-float tail
        [1e308, 1e-300, 1e-300],        # extreme spread
        [7.0] * 3,                      # 0.8*total lands between elements
        list(np.random.default_rng(1).pareto(0.6, 5000) * 1e9 + 1),
    ])
    def test_share_for_80pct_never_exceeds_one(self, packets):
        """Regression: ``0.8 * total`` (pairwise sum) can exceed every
        sequential-cumsum prefix, in which case ``searchsorted`` returned
        ``size`` and the share came out above 1.0; the index is clamped
        now — 100% of scans always suffice for 80% of the traffic."""
        report = concentration_from_packets(np.array(packets, dtype=float))
        assert 0.0 < report.share_for_80pct <= 1.0


class TestMetricTrend:
    def test_positive_trend(self):
        trend = metric_trend({2015: 1.0, 2018: 2.0, 2021: 3.0})
        assert trend.r == pytest.approx(1.0)
        assert trend.years == (2015, 2018, 2021)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            metric_trend({2015: 1.0})
