"""Unit tests for institution profiles and the known-scanner feed."""

import numpy as np
import pytest

from repro.enrichment import (
    DEFAULT_INSTITUTIONS,
    InstitutionProfile,
    KnownScannerFeed,
    institutions_active_in,
    profile_by_name,
)


class TestProfiles:
    def test_catalogue_nonempty(self):
        assert len(DEFAULT_INSTITUTIONS) >= 20

    def test_profile_by_name(self):
        assert profile_by_name("Censys").country == "US"
        with pytest.raises(KeyError):
            profile_by_name("Nonexistent Org")

    def test_coverage_zero_before_first_year(self):
        censys = profile_by_name("Censys")
        assert censys.coverage_in(2015) == 0.0

    def test_censys_full_range_by_2024(self):
        """§5.1/§6.8: Censys reaches all 65,536 ports by 2024."""
        censys = profile_by_name("Censys")
        assert censys.coverage_in(2024) == 1.0
        assert censys.ports_in(2024) == 65536

    def test_palo_alto_full_range_2024(self):
        assert profile_by_name("Palo Alto Networks").coverage_in(2024) == 1.0

    def test_onyphe_doubles_2023_to_2024(self):
        """§6.8: Onyphe scales from under half to the full range."""
        onyphe = profile_by_name("Onyphe")
        assert onyphe.coverage_in(2023) < 0.5
        assert onyphe.coverage_in(2024) == 1.0

    def test_shadowserver_rapid7_not_full(self):
        """Figure 8: Shadowserver and Rapid7 do not yet cover all ports."""
        for name in ("Shadowserver Foundation", "Rapid7"):
            assert profile_by_name(name).coverage_in(2024) < 0.99

    def test_universities_tiny_and_flat(self):
        """§6.8: universities target a few ports with no growth."""
        for name in ("University of Michigan", "UCSD", "TU Munich"):
            profile = profile_by_name(name)
            assert profile.ports_in(2024) < 100
            first = profile.ports_in(max(profile.first_year, 2015))
            assert profile.ports_in(2024) <= first * 3 + 5

    def test_interpolation_monotone_for_censys(self):
        censys = profile_by_name("Censys")
        values = [censys.coverage_in(y) for y in range(2016, 2025)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_active_in_grows(self):
        assert len(institutions_active_in(2015)) < len(institutions_active_in(2024))

    def test_active_in_respects_first_year(self):
        names_2015 = {p.name for p in institutions_active_in(2015)}
        assert "Palo Alto Networks" not in names_2015
        assert "Shodan" in names_2015


class TestFeed:
    def test_feed_covers_catalogue(self, feed):
        assert len(feed.organisations()) == len(DEFAULT_INSTITUTIONS)

    def test_is_known_for_org_space(self, registry, feed, rng):
        ips = registry.sample_addresses(rng, 50, organisation="Rapid7")
        assert np.all(feed.is_known(ips))
        assert set(feed.organisation_of(ips).tolist()) == {"Rapid7"}

    def test_is_known_negative(self, registry, feed, rng):
        from repro.enrichment import AllocationType
        ips = registry.sample_addresses(rng, 50, alloc_type=AllocationType.RESIDENTIAL)
        assert not feed.is_known(ips).any()
        assert all(o == "" for o in feed.organisation_of(ips))

    def test_feed_requires_registry(self):
        with pytest.raises(TypeError):
            KnownScannerFeed(object())

    def test_empty_array_handling(self, feed):
        empty = np.array([], dtype=np.uint32)
        assert feed.is_known(empty).size == 0
        assert feed.organisation_of(empty).size == 0
