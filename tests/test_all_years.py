"""Calibration regression: every study year simulates and analyses with its
era-specific invariants intact.

These are cheap, small-budget sims — the point is catching calibration
regressions (a config edit breaking one year) rather than precise shares;
the benchmarks hold the tight comparisons.
"""

import numpy as np
import pytest

from repro.core import analyze_simulation, summarize_period
from repro.scanners import Tool
from repro.simulation import ALL_YEARS


@pytest.fixture(scope="module")
def mini_decade(telescope, registry):
    from repro.simulation import TelescopeWorld
    dedicated = TelescopeWorld(telescope=telescope, registry=registry, rng=5)
    out = {}
    for year in ALL_YEARS:
        sim = dedicated.simulate_year(year, days=7, max_packets=60_000,
                                      min_scans=250)
        out[year] = (sim, analyze_simulation(sim))
    return out


@pytest.mark.parametrize("year", ALL_YEARS)
class TestEveryYear:
    def test_volume_projection_sane(self, mini_decade, year):
        sim, _ = mini_decade[year]
        projected = sim.packets_per_day_unscaled()
        assert 0.4 * sim.config.packets_per_day < projected < 2.0 * sim.config.packets_per_day

    def test_scans_identified(self, mini_decade, year):
        _, analysis = mini_decade[year]
        assert len(analysis.study_scans) > 100

    def test_blocked_ports_absent_post_2017(self, mini_decade, year):
        _, analysis = mini_decade[year]
        ports = set(np.unique(analysis.batch.dst_port).tolist())
        if year >= 2017:
            assert 23 not in ports and 445 not in ports

    def test_syn_share_about_98pct(self, mini_decade, year):
        sim, _ = mini_decade[year]
        assert 0.95 < sim.syn_scan_share() < 0.995

    def test_institutional_scans_present(self, mini_decade, year):
        _, analysis = mini_decade[year]
        orgs = {str(o) for o in analysis.study_scans.organisation if o}
        assert len(orgs) >= 3

    def test_top_source_port_plausible(self, mini_decade, year):
        """The by-sources leader must come from the year's calibrated list."""
        from repro.simulation.config import _PORT_SOURCE_WEIGHTS
        from repro.core.ecosystem import top_ports_by_sources
        _, analysis = mini_decade[year]
        tops = [p.port for p in top_ports_by_sources(analysis, k=3)]
        calibrated = set(_PORT_SOURCE_WEIGHTS[year])
        assert set(tops) & calibrated, (year, tops)


class TestEraInvariants:
    def test_mirai_era(self, mini_decade):
        """No Mirai before 2017; dominant in 2017; minor by 2022."""
        def mirai_share(year):
            _, analysis = mini_decade[year]
            return summarize_period(analysis).tool_shares_by_scans.get(
                Tool.MIRAI, 0.0)
        assert mirai_share(2015) < 0.02
        assert mirai_share(2016) < 0.05
        assert mirai_share(2017) > 0.25
        assert mirai_share(2022) < 0.08

    def test_nmap_era(self, mini_decade):
        """NMap dominant among tracked tools in 2015, negligible by 2023."""
        def nmap_share(year):
            _, analysis = mini_decade[year]
            return summarize_period(analysis).tool_shares_by_scans.get(
                Tool.NMAP, 0.0)
        assert nmap_share(2015) > 0.2
        assert nmap_share(2023) < 0.02

    def test_masscan_era(self, mini_decade):
        """Masscan's rise (2018-2021) and disappearance (2023+)."""
        def share(year):
            _, analysis = mini_decade[year]
            return summarize_period(analysis).tool_shares_by_scans.get(
                Tool.MASSCAN, 0.0)
        assert share(2015) < 0.05
        assert share(2019) > 0.10
        assert share(2024) < 0.03

    def test_zmap_sharded_era(self, mini_decade):
        """ZMap scan share explodes in 2024 (sharded collaborations)."""
        def share(year):
            _, analysis = mini_decade[year]
            return summarize_period(analysis).tool_shares_by_scans.get(
                Tool.ZMAP, 0.0)
        assert share(2024) > 2.5 * share(2018)
        assert share(2024) > 0.3

    def test_sharding_era_sources(self, mini_decade):
        """Multi-source campaigns are a late-decade phenomenon."""
        def sharded_fraction(year):
            sim, _ = mini_decade[year]
            shards = [c.shards for c in sim.campaigns]
            return np.mean([s > 1 for s in shards])
        assert sharded_fraction(2024) > 3 * max(sharded_fraction(2015), 0.01)
