"""End-to-end integration: simulator → telescope → pipeline → reports.

These tests close the loop: the analysis pipeline, which only ever sees
packets, must recover the ground truth the simulator planted.
"""

import numpy as np
import pytest

from repro import (
    CampaignCriteria,
    Tool,
    analyze_simulation,
    summarize_period,
)
from repro.core import analyze_period
from repro.enrichment import ScannerClassifier
from repro.enrichment.types import ScannerType
from repro.telescope import read_trace, write_trace


class TestRecoveryAgainstGroundTruth:
    def test_most_campaigns_recovered(self, sim2020, analysis2020):
        truth_observed = sum(c.shards for c in sim2020.campaigns)
        recovered = len(analysis2020.scans)
        # Period-edge censoring and 1 h-gap splits cost a bounded fraction.
        assert recovered > 0.7 * truth_observed
        assert recovered < 1.3 * truth_observed

    def test_tool_attribution_accuracy(self, sim2020, analysis2020):
        """Fingerprinted tools must match the generating tools per source."""
        truth = {}
        for spec in sim2020.campaigns:
            for ip in spec.src_ips:
                expected = spec.tool
                if spec.tool == Tool.ZMAP and not spec.fingerprintable:
                    expected = Tool.UNKNOWN
                truth[ip] = expected
        scans = analysis2020.scans
        checked = correct = 0
        for i in range(len(scans)):
            expected = truth.get(int(scans.src_ip[i]))
            if expected is None:
                continue
            checked += 1
            if scans.tool[i] == expected:
                correct += 1
        assert checked > 100
        assert correct / checked > 0.97

    def test_scanner_type_recovery(self, sim2020, analysis2020):
        truth = {}
        for spec in sim2020.campaigns:
            for ip in spec.src_ips:
                truth[ip] = spec.scanner_type
        scans = analysis2020.scans
        checked = correct = 0
        for i in range(len(scans)):
            expected = truth.get(int(scans.src_ip[i]))
            if expected is None:
                continue
            checked += 1
            if scans.scanner_type[i] == expected:
                correct += 1
        assert correct / checked > 0.99

    def test_organisation_recovery(self, sim2020, analysis2020):
        truth_orgs = {ip: c.organisation for c in sim2020.campaigns
                      for ip in c.src_ips if c.organisation}
        scans = analysis2020.scans
        hits = 0
        for i in range(len(scans)):
            org = truth_orgs.get(int(scans.src_ip[i]))
            if org:
                assert scans.organisation[i] == org
                hits += 1
        assert hits > 10

    def test_speed_recovery_unbiased(self, sim2020, analysis2020):
        """Measured speeds must track planted rates within a small factor."""
        truth_rate = {}
        for spec in sim2020.campaigns:
            for ip in spec.src_ips:
                truth_rate[ip] = spec.rate_pps / spec.shards
        scans = analysis2020.scans
        ratios = []
        for i in range(len(scans)):
            rate = truth_rate.get(int(scans.src_ip[i]))
            if rate and not scans.sequential[i]:
                ratios.append(scans.speed_pps[i] / rate)
        ratios = np.array(ratios)
        assert ratios.size > 50
        assert 0.7 < np.median(ratios) < 1.4

    def test_ports_recovery(self, sim2020, analysis2020):
        # A source IP can run several campaigns (recurrence); truth is the
        # union of everything it ever targeted.
        truth_union = {}
        truth_sets = {}
        for spec in sim2020.campaigns:
            for ip in spec.src_ips:
                truth_union.setdefault(ip, set()).update(spec.ports)
                truth_sets.setdefault(ip, []).append(set(spec.ports))
        scans = analysis2020.scans
        exact = checked = 0
        for i in range(len(scans)):
            union = truth_union.get(int(scans.src_ip[i]))
            if union is None:
                continue
            observed = set(scans.port_sets[i].tolist())
            checked += 1
            # Observed ports must come from the source's campaigns.
            assert observed <= union
            if any(observed == s for s in truth_sets[int(scans.src_ip[i])]):
                exact += 1
        assert exact / checked > 0.5


class TestCriteriaComparison:
    def test_looser_criteria_find_more_scans(self, sim2020):
        strict = analyze_simulation(sim2020)
        loose = analyze_simulation(
            sim2020, criteria=CampaignCriteria(min_distinct_dsts=50,
                                               min_rate_pps=10.0)
        )
        assert len(loose.scans) >= len(strict.scans)


class TestTraceRoundTripAnalysis:
    def test_analysis_identical_after_serialisation(self, sim2020, tmp_path):
        """Writing the capture to disk and re-analysing must not change
        a single result."""
        path = tmp_path / "capture.rtrace"
        write_trace(path, sim2020.batch, meta={"year": sim2020.year})
        loaded, meta = read_trace(path)
        assert meta["year"] == 2020
        a = analyze_simulation(sim2020)
        classifier = ScannerClassifier(sim2020.registry)
        b = analyze_period(loaded, year=meta["year"], days=sim2020.days,
                           classifier=classifier)
        assert len(a.scans) == len(b.scans)
        assert np.array_equal(a.scans.src_ip, b.scans.src_ip)
        assert np.array_equal(a.scans.packets, b.scans.packets)
        assert list(a.scans.tool) == list(b.scans.tool)


class TestSummaryConsistency:
    def test_summary_matches_analysis(self, analysis2020):
        summary = summarize_period(analysis2020)
        assert summary.packets_per_day == pytest.approx(analysis2020.packets_per_day)
        assert summary.scans_per_month == pytest.approx(analysis2020.scans_per_month)
        assert summary.distinct_sources == analysis2020.distinct_sources

    def test_institutional_packets_substantial(self, analysis2020):
        """2020 calibration: institutional sources carry >5% of packets."""
        from repro.core.classification import type_shares
        rows = {r.scanner_type: r for r in type_shares(analysis2020)}
        assert rows[ScannerType.INSTITUTIONAL].packets > 0.05
