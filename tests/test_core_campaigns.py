"""Unit tests for scan-campaign identification (§3.4)."""

import numpy as np
import pytest

from repro.core.campaigns import (
    CampaignCriteria,
    ScanTable,
    detect_sequential,
    estimate_internet_rate,
    identify_scans,
    identify_scans_reference,
    iter_source_sessions,
)
from repro.scanners import Tool
from repro.telescope.packet import PacketBatch


def session_batch(src=1000, n=200, t0=0.0, duration=100.0, port=80, seed=0,
                  distinct_dsts=None):
    """A synthetic scan session with controllable shape."""
    gen = np.random.default_rng(seed)
    if distinct_dsts is None:
        dst = gen.integers(0x64400000, 0x64410000, n, dtype=np.uint32)
    else:
        pool = np.arange(0x64400000, 0x64400000 + distinct_dsts, dtype=np.uint32)
        dst = pool[gen.integers(0, pool.size, n)]
        # Guarantee every pool address appears at least once if n allows.
        dst[:min(n, pool.size)] = pool[:min(n, pool.size)]
    return PacketBatch(
        time=np.sort(gen.uniform(t0, t0 + duration, n)),
        src_ip=np.full(n, src, dtype=np.uint32),
        dst_ip=dst,
        src_port=gen.integers(1024, 65535, n, dtype=np.uint16),
        dst_port=np.full(n, port, dtype=np.uint16),
        ip_id=gen.integers(0, 2**16, n, dtype=np.uint16),
        seq=gen.integers(0, 2**32, n, dtype=np.uint32),
        ttl=np.full(n, 50, dtype=np.uint8),
        window=np.full(n, 1024, dtype=np.uint16),
        flags=np.full(n, 2, dtype=np.uint8),
    )


class TestCriteria:
    def test_defaults_are_paper_values(self):
        c = CampaignCriteria()
        assert c.min_distinct_dsts == 100
        assert c.min_rate_pps == 100.0
        assert c.expiry_s == 3600.0

    def test_durumeric_preset(self):
        c = CampaignCriteria.durumeric2014()
        assert c.min_rate_pps == 10.0
        assert c.expiry_s == 480.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignCriteria(min_distinct_dsts=0)
        with pytest.raises(ValueError):
            CampaignCriteria(min_rate_pps=0)
        with pytest.raises(ValueError):
            CampaignCriteria(expiry_s=-1)

    def test_internet_rate_extrapolation(self):
        c = CampaignCriteria(telescope_size=2**16)
        assert c.internet_rate(1.0) == pytest.approx(2**16)


class TestSessionSplitting:
    def test_single_session(self):
        batch = session_batch(n=50)
        sessions = list(iter_source_sessions(batch, 3600.0))
        assert len(sessions) == 1
        src, idx = sessions[0]
        assert src == 1000 and idx.size == 50

    def test_gap_splits_sessions(self):
        a = session_batch(n=30, t0=0.0, duration=100.0)
        b = session_batch(n=30, t0=10_000.0, duration=100.0, seed=1)
        merged = PacketBatch.concat([a, b])
        sessions = list(iter_source_sessions(merged, 3600.0))
        assert len(sessions) == 2

    def test_gap_below_expiry_stays_merged(self):
        a = session_batch(n=30, t0=0.0, duration=100.0)
        b = session_batch(n=30, t0=1000.0, duration=100.0, seed=1)
        merged = PacketBatch.concat([a, b])
        assert len(list(iter_source_sessions(merged, 3600.0))) == 1

    def test_sources_kept_separate(self):
        a = session_batch(src=1, n=20)
        b = session_batch(src=2, n=20, seed=1)
        merged = PacketBatch.concat([a, b])
        srcs = {s for s, _ in iter_source_sessions(merged, 3600.0)}
        assert srcs == {1, 2}

    def test_empty_batch(self):
        assert list(iter_source_sessions(PacketBatch.empty(), 3600.0)) == []

    def test_session_indices_time_ordered(self):
        batch = session_batch(n=40)
        for _, idx in iter_source_sessions(batch, 3600.0):
            assert np.all(np.diff(batch.time[idx]) >= 0)


class TestIdentifyScans:
    def test_detects_valid_scan(self):
        scans = identify_scans(session_batch(n=300, duration=60.0))
        assert len(scans) == 1
        assert scans.packets[0] == 300
        assert scans.distinct_dsts[0] >= 100

    def test_too_few_distinct_dsts_rejected(self):
        batch = session_batch(n=300, distinct_dsts=50)
        assert len(identify_scans(batch)) == 0

    def test_too_slow_rejected(self):
        # 150 packets over 20 days: split apart by the 1 h expiry and far
        # below the 100 pps Internet-wide rate in any surviving session.
        batch = session_batch(n=150, duration=20 * 86400.0)
        assert len(identify_scans(batch)) == 0

    def test_expiry_splits_into_two_scans(self):
        a = session_batch(n=200, t0=0.0, duration=60.0)
        b = session_batch(n=200, t0=8000.0, duration=60.0, seed=1)
        scans = identify_scans(PacketBatch.concat([a, b]))
        assert len(scans) == 2

    def test_ports_recorded(self):
        a = session_batch(n=150, port=80)
        b = session_batch(n=100, port=8080, seed=1)
        merged = PacketBatch.concat([a, b]).sorted_by_time()
        scans = identify_scans(merged)
        assert len(scans) == 1
        assert scans.port_sets[0].tolist() == [80, 8080]
        assert scans.primary_port[0] == 80  # more packets on 80

    def test_coverage_estimate(self):
        scans = identify_scans(session_batch(n=5000, duration=50.0))
        expected = scans.distinct_dsts[0] / CampaignCriteria().telescope_size
        assert scans.coverage[0] == pytest.approx(expected)

    def test_looser_criteria_accept_more(self):
        # 150 packets over 2.3 days: default criteria split it at the 1 h
        # gaps and reject the fragments; looser Durumeric-style thresholds
        # with a longer expiry keep it as one scan.
        slow = session_batch(n=150, duration=200_000.0)
        assert len(identify_scans(slow)) == 0
        loose = CampaignCriteria(min_rate_pps=1.0, expiry_s=300_000.0)
        assert len(identify_scans(slow, criteria=loose)) == 1

    def test_speed_estimate_random_scan(self):
        duration = 100.0
        batch = session_batch(n=1000, duration=duration)
        scans = identify_scans(batch)
        observed = scans.speed_pps[0]
        expected = CampaignCriteria().internet_rate(1000 / duration)
        assert observed == pytest.approx(expected, rel=0.05)


class TestSequentialDetection:
    def _sweep_batch(self, n=300, rate=2000.0, src=77):
        """A linear sweep across the paper telescope's address extent."""
        gen = np.random.default_rng(0)
        dst = np.sort(gen.choice(np.arange(0x64400000, 0x64430000, dtype=np.uint32),
                                 n, replace=False))
        # A sweep probing fraction c of addresses at `rate` pps moves at
        # rate/c addresses per second; with c = n / telescope_size the
        # estimator should recover `rate`.
        c = n / CampaignCriteria().telescope_size
        t = (dst - dst[0]).astype(np.float64) * c / rate
        return PacketBatch(
            time=t,
            src_ip=np.full(n, src, dtype=np.uint32),
            dst_ip=dst,
            src_port=gen.integers(1024, 65535, n, dtype=np.uint16),
            dst_port=np.full(n, 22, dtype=np.uint16),
            ip_id=gen.integers(0, 2**16, n, dtype=np.uint16),
            seq=gen.integers(0, 2**32, n, dtype=np.uint32),
            ttl=np.full(n, 50, dtype=np.uint8),
            window=np.full(n, 1024, dtype=np.uint16),
            flags=np.full(n, 2, dtype=np.uint8),
        )

    def test_detect_sequential_positive(self):
        batch = self._sweep_batch()
        assert detect_sequential(batch.time, batch.dst_ip)

    def test_detect_sequential_negative_random(self):
        batch = session_batch(n=300)
        assert not detect_sequential(batch.time, batch.dst_ip)

    def test_detect_sequential_needs_packets(self):
        batch = self._sweep_batch(n=25)
        small = batch[0:10]
        assert not detect_sequential(small.time, small.dst_ip)

    def test_sequential_flag_set_by_identify(self):
        scans = identify_scans(self._sweep_batch())
        assert len(scans) == 1
        assert bool(scans.sequential[0])

    def test_sweep_speed_not_inflated(self):
        """The burst must not be extrapolated as a random-targeting scan."""
        scans = identify_scans(self._sweep_batch(n=400))
        naive = CampaignCriteria().internet_rate(
            scans.packets[0] / scans.duration[0]
        )
        assert scans.speed_pps[0] < naive / 100

    def test_estimate_rate_constant_dst_falls_back(self):
        times = np.linspace(0, 10, 30)
        dst = np.full(30, 0x64400001, dtype=np.uint32)
        rate = estimate_internet_rate(times, dst, 1, CampaignCriteria(), True)
        assert rate == pytest.approx(CampaignCriteria().internet_rate(3.0), rel=0.01)


class TestScanTable:
    def test_select_roundtrip(self):
        scans = identify_scans(PacketBatch.concat([
            session_batch(src=1, n=200),
            session_batch(src=2, n=200, seed=1),
        ]))
        assert len(scans) == 2
        picked = scans.select(scans.src_ip == 1)
        assert len(picked) == 1 and picked.src_ip[0] == 1

    def test_select_requires_bool(self):
        scans = identify_scans(session_batch(n=200))
        with pytest.raises(TypeError):
            scans.select(np.array([1]))

    def test_select_misaligned(self):
        scans = identify_scans(session_batch(n=200))
        with pytest.raises(ValueError):
            scans.select(np.array([True, False]))

    def test_empty_table(self):
        table = ScanTable.empty()
        assert len(table) == 0
        assert table.tool_shares_by_scans() == {}
        assert table.tool_shares_by_packets() == {}

    def test_n_ports_column(self):
        a = session_batch(n=150, port=80)
        b = session_batch(n=150, port=443, seed=1)
        scans = identify_scans(PacketBatch.concat([a, b]).sorted_by_time())
        assert scans.n_ports[0] == 2

    def test_speed_bps_conversion(self):
        scans = identify_scans(session_batch(n=200))
        assert scans.speed_bps[0] == pytest.approx(scans.speed_pps[0] * 480)

    def test_column_misalignment_rejected(self):
        scans = identify_scans(session_batch(n=200))
        with pytest.raises(ValueError):
            ScanTable(
                src_ip=scans.src_ip,
                start=scans.start[:0],
                end=scans.end,
                packets=scans.packets,
                distinct_dsts=scans.distinct_dsts,
                port_sets=scans.port_sets,
                primary_port=scans.primary_port,
                tool=scans.tool,
                match_fraction=scans.match_fraction,
                speed_pps=scans.speed_pps,
                coverage=scans.coverage,
            )

    def test_enrich_fills_columns(self, classifier, registry, rng):
        src = int(registry.sample_addresses(rng, 1, country="CN")[0])
        scans = identify_scans(session_batch(src=src, n=200))
        scans.enrich(classifier)
        assert scans.country[0] == "CN"
        assert scans.scanner_type[0] is not None


class TestVectorizedAgainstReference:
    """The array implementation must reproduce the per-session loop exactly."""

    def _assert_tables_equal(self, a, b):
        assert len(a) == len(b)
        for name in ("src_ip", "start", "end", "packets", "distinct_dsts",
                     "primary_port", "tool", "match_fraction", "coverage",
                     "sequential", "window_mode", "ttl_mode"):
            va, vb = getattr(a, name), getattr(b, name)
            assert va.dtype == vb.dtype, name
            assert np.array_equal(va, vb), name
        np.testing.assert_allclose(a.speed_pps, b.speed_pps, rtol=1e-9)
        for pa, pb in zip(a.port_sets, b.port_sets):
            assert pa.dtype == pb.dtype == np.int64
            assert np.array_equal(pa, pb)

    def test_simulated_capture(self, sim2020):
        self._assert_tables_equal(
            identify_scans_reference(sim2020.batch),
            identify_scans(sim2020.batch),
        )

    def test_synthetic_edge_sessions(self):
        # Sweep (perfect correlation), random session, and a constant-dst
        # session that must be rejected, interleaved in one batch.
        gen = np.random.default_rng(3)
        sweep_dst = np.arange(0x64400000, 0x64400000 + 600, dtype=np.uint32)
        sweep = PacketBatch(
            time=np.linspace(0.0, 30.0, 600),
            src_ip=np.full(600, 42, dtype=np.uint32),
            dst_ip=sweep_dst,
            src_port=np.full(600, 40000, dtype=np.uint16),
            dst_port=np.full(600, 23, dtype=np.uint16),
            ip_id=gen.integers(0, 2**16, 600, dtype=np.uint16),
            seq=gen.integers(0, 2**32, 600, dtype=np.uint32),
            ttl=np.full(600, 240, dtype=np.uint8),
            window=np.full(600, 29200, dtype=np.uint16),
            flags=np.full(600, 2, dtype=np.uint8),
        )
        batch = PacketBatch.concat([
            sweep,
            session_batch(src=7, n=400, duration=80.0, seed=4),
            session_batch(src=9, n=300, duration=60.0, distinct_dsts=3,
                          seed=5),
        ]).sorted_by_time()
        self._assert_tables_equal(
            identify_scans_reference(batch), identify_scans(batch)
        )

    def test_empty(self):
        assert len(identify_scans(PacketBatch.empty())) == 0
        assert len(identify_scans_reference(PacketBatch.empty())) == 0
