"""Tests for the reproduction scorecard."""

import numpy as np
import pytest

from repro.core import analyze_simulation
from repro.reporting import ClaimCheck, render_scorecard, validate_reproduction
from repro.simulation import TelescopeWorld


@pytest.fixture(scope="module")
def mini_study(telescope, registry):
    """Three study years at small scale for scorecard tests."""
    dedicated = TelescopeWorld(telescope=telescope, registry=registry, rng=3)
    sims, analyses = {}, {}
    for year in (2015, 2020, 2024):
        sims[year] = dedicated.simulate_year(year, days=8,
                                             max_packets=70_000,
                                             min_scans=300)
        analyses[year] = analyze_simulation(sims[year])
    return sims, analyses


class TestValidate:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            validate_reproduction({})

    def test_most_claims_pass_on_calibrated_sim(self, mini_study):
        sims, analyses = mini_study
        checks = validate_reproduction(analyses, sims)
        assert len(checks) >= 10
        passed = sum(c.passed for c in checks)
        assert passed >= len(checks) - 2

    def test_growth_checks_need_sims(self, mini_study):
        _, analyses = mini_study
        checks = validate_reproduction(analyses, sims=None)
        ids = {c.claim_id for c in checks}
        assert "growth-packets" not in ids
        assert "syn-share" not in ids
        assert "weekly-volatility" in ids

    def test_checks_have_required_fields(self, mini_study):
        sims, analyses = mini_study
        for check in validate_reproduction(analyses, sims):
            assert check.claim_id
            assert check.section.startswith(("§", "Table", "Fig"))
            assert check.expected and check.measured
            assert isinstance(check.passed, bool)

    def test_single_year_subset_still_works(self, mini_study):
        sims, analyses = mini_study
        checks = validate_reproduction({2020: analyses[2020]},
                                       {2020: sims[2020]})
        assert checks
        ids = {c.claim_id for c in checks}
        assert "growth-packets" not in ids  # needs early+late years


class TestRenderScorecard:
    def test_renders_pass_fail(self):
        checks = [
            ClaimCheck("a", "§1", "desc", "x", "y", True),
            ClaimCheck("b", "§2", "desc", "x", "y", False),
        ]
        text = render_scorecard(checks)
        assert "PASS" in text and "FAIL" in text
        assert "1/2 claims reproduced" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_scorecard([])


class TestCliValidate:
    def test_cli_scorecard(self, capsys):
        from repro.cli import main
        code = main(["validate", "--days", "6", "--max-packets", "50000",
                     "--years", "2015,2020,2024", "--seed", "3"])
        out = capsys.readouterr().out
        assert "claims reproduced" in out
        assert code in (0, 1)

    def test_cli_bad_years(self, capsys):
        from repro.cli import main
        assert main(["validate", "--years", "1999"]) == 2
