"""Unit tests for the tool-fingerprint detectors (§3.3).

Detectors are validated in both directions: each tool's generator output is
attributed to the right tool, and other tools' / random traffic is not.
"""

import numpy as np
import pytest

from repro.core.fingerprints import (
    ToolFingerprinter,
    masscan_match,
    mirai_match,
    nmap_pair_match,
    unicorn_pair_match,
    zmap_match,
)
from repro.scanners import (
    CustomToolModel,
    MasscanModel,
    MiraiModel,
    NMapModel,
    Tool,
    UnicornModel,
    ZMapModel,
    model_for,
)
from repro.telescope.packet import PacketBatch, SynPacket


def craft_batch(model, n=200, seed=0):
    gen = np.random.default_rng(seed)
    dst_ip = gen.integers(0, 2**32, n, dtype=np.uint32)
    dst_port = gen.integers(1, 2**16, n, dtype=np.uint16)
    fields = model.craft(dst_ip, dst_port)
    return PacketBatch(
        time=np.arange(n, dtype=float),
        src_ip=np.full(n, 42, dtype=np.uint32),
        dst_ip=dst_ip,
        src_port=fields.src_port,
        dst_port=dst_port,
        ip_id=fields.ip_id,
        seq=fields.seq,
        ttl=fields.ttl,
        window=fields.window,
        flags=np.full(n, 2, dtype=np.uint8),
    )


@pytest.fixture(scope="module")
def fingerprinter():
    return ToolFingerprinter()


class TestDetectorsAttributeTheirTool:
    @pytest.mark.parametrize("tool", [
        Tool.ZMAP, Tool.MASSCAN, Tool.NMAP, Tool.MIRAI, Tool.UNICORN,
    ])
    def test_generator_detected(self, fingerprinter, tool):
        batch = craft_batch(model_for(tool, rng=3))
        verdict = fingerprinter.fingerprint_batch(batch)
        assert verdict.tool == tool
        assert verdict.match_fraction >= 0.9

    def test_custom_is_unknown(self, fingerprinter):
        batch = craft_batch(CustomToolModel(rng=3))
        assert fingerprinter.fingerprint_batch(batch).tool == Tool.UNKNOWN

    def test_defingerprinted_zmap_is_unknown(self, fingerprinter):
        batch = craft_batch(ZMapModel(rng=3, fingerprintable=False))
        assert fingerprinter.fingerprint_batch(batch).tool == Tool.UNKNOWN

    def test_empty_batch(self, fingerprinter):
        verdict = fingerprinter.fingerprint_batch(PacketBatch.empty())
        assert verdict.tool == Tool.UNKNOWN
        assert verdict.packets_examined == 0

    def test_two_packet_scan_pairwise_tools(self, fingerprinter):
        batch = craft_batch(NMapModel(rng=1), n=2)
        assert fingerprinter.fingerprint_batch(batch).tool == Tool.NMAP


class TestDetectorCrossConfusion:
    """No tool's traffic should be attributed to another tool."""

    @pytest.mark.parametrize("tool", [
        Tool.ZMAP, Tool.MASSCAN, Tool.NMAP, Tool.MIRAI, Tool.UNICORN,
    ])
    def test_no_cross_attribution(self, fingerprinter, tool):
        for other in (Tool.ZMAP, Tool.MASSCAN, Tool.NMAP, Tool.MIRAI, Tool.UNICORN):
            if other == tool:
                continue
            batch = craft_batch(model_for(other, rng=17), n=300, seed=5)
            verdict = fingerprinter.fingerprint_batch(batch)
            assert verdict.tool != tool or verdict.tool == other


class TestRelationPrimitives:
    def test_zmap_match(self):
        assert zmap_match(np.array([54321], dtype=np.uint16))[0]
        assert not zmap_match(np.array([54320], dtype=np.uint16))[0]

    def test_masscan_match_positive(self):
        model = MasscanModel(rng=0)
        gen = np.random.default_rng(0)
        dip = gen.integers(0, 2**32, 50, dtype=np.uint32)
        dpt = gen.integers(1, 2**16, 50, dtype=np.uint16)
        fields = model.craft(dip, dpt)
        assert masscan_match(fields.ip_id, dip, dpt, fields.seq).all()

    def test_mirai_match(self):
        dip = np.array([123456789], dtype=np.uint32)
        assert mirai_match(dip.copy(), dip)[0]
        assert not mirai_match(dip + 1, dip)[0]

    def test_nmap_pair_match_short_input(self):
        assert nmap_pair_match(np.array([1], dtype=np.uint32)).size == 0

    def test_unicorn_pair_match_short_input(self):
        one = np.array([1], dtype=np.uint32)
        assert unicorn_pair_match(one, one, one.astype(np.uint16),
                                  one.astype(np.uint16)).size == 0

    def test_random_false_positive_rates(self, rng):
        """Random header fields must almost never satisfy the relations."""
        n = 20_000
        ip_id = rng.integers(0, 2**16, n, dtype=np.uint16)
        seq = rng.integers(0, 2**32, n, dtype=np.uint32)
        dip = rng.integers(0, 2**32, n, dtype=np.uint32)
        dpt = rng.integers(1, 2**16, n, dtype=np.uint16)
        spt = rng.integers(1, 2**16, n, dtype=np.uint16)
        assert zmap_match(ip_id).mean() < 1e-3
        assert masscan_match(ip_id, dip, dpt, seq).mean() < 1e-3
        assert mirai_match(seq, dip).mean() < 1e-3
        assert nmap_pair_match(seq).mean() < 1e-3      # chance 2^-16
        assert unicorn_pair_match(seq, dip, dpt, spt).mean() < 1e-4


class TestFingerprinterConfig:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ToolFingerprinter(threshold=0.0)
        with pytest.raises(ValueError):
            ToolFingerprinter(threshold=1.5)

    def test_sample_limit_validation(self):
        with pytest.raises(ValueError):
            ToolFingerprinter(sample_limit=1)

    def test_sample_limit_truncates(self):
        fp = ToolFingerprinter(sample_limit=16)
        batch = craft_batch(MasscanModel(rng=0), n=500)
        verdict = fp.fingerprint_batch(batch)
        assert verdict.packets_examined == 16
        assert verdict.tool == Tool.MASSCAN

    def test_mixed_traffic_below_threshold(self):
        """A scan that is half Masscan, half random must not be attributed."""
        a = craft_batch(MasscanModel(rng=1), n=100)
        b = craft_batch(CustomToolModel(rng=2), n=100, seed=9)
        interleaved = PacketBatch.concat([a, b]).sorted_by_time()
        verdict = ToolFingerprinter().fingerprint_batch(interleaved)
        assert verdict.tool == Tool.UNKNOWN

    def test_per_packet_tool_mixed(self):
        a = craft_batch(MasscanModel(rng=1), n=50)
        b = craft_batch(MiraiModel(rng=2), n=50, seed=4)
        c = craft_batch(ZMapModel(rng=3), n=50, seed=8)
        batch = PacketBatch.concat([a, b, c])
        tools = ToolFingerprinter().per_packet_tool(batch)
        assert (tools[:50] == Tool.MASSCAN).mean() > 0.95
        assert (tools[50:100] == Tool.MIRAI).mean() > 0.95
        assert (tools[100:] == Tool.ZMAP).mean() > 0.95
