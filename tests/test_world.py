"""Tests for the TelescopeWorld generator: budgets, shares, determinism."""

import numpy as np
import pytest

from repro.enrichment.types import ScannerType
from repro.scanners import Tool
from repro.simulation import TelescopeWorld, year_config
from repro.simulation.world import SimulationResult


class TestSimulationResult:
    def test_volume_calibration(self, sim2020):
        """Projected packets/day must land near Table 1's 283 M."""
        projected = sim2020.packets_per_day_unscaled()
        assert 0.6 * 283e6 < projected < 1.6 * 283e6

    def test_scan_calibration(self, sim2020):
        """Projected scans/month must land near Table 1's 222 K."""
        projected = sim2020.scans_per_month_unscaled()
        assert 0.6 * 222e3 < projected < 1.6 * 222e3

    def test_packet_budget_respected(self, sim2020):
        assert len(sim2020.batch) < 120_000 * 1.7

    def test_min_scans_respected(self, sim2020):
        observed = sum(s.shards for s in sim2020.campaigns)
        assert observed >= 300 * 0.9

    def test_batch_sorted(self, sim2020):
        assert np.all(np.diff(sim2020.batch.time) >= 0)

    def test_all_syn(self, sim2020):
        assert np.all(sim2020.batch.flags == 2)

    def test_all_destinations_monitored(self, sim2020, telescope):
        assert np.all(telescope.monitored.contains_array(sim2020.batch.dst_ip))

    def test_coverage_cap_recorded(self, sim2020):
        assert 0 < sim2020.coverage_cap <= 1.0

    def test_background_sources_plentiful(self, sim2020):
        assert sim2020.background_sources > 1000


class TestGroundTruth:
    def test_campaigns_have_unique_ids(self, sim2020):
        ids = [c.campaign_id for c in sim2020.campaigns]
        assert len(set(ids)) == len(ids)

    def test_tool_mix_matches_config(self, sim2020):
        """Observed-scan tool shares must track Table 1's 2020 row."""
        from collections import Counter
        counts = Counter()
        for spec in sim2020.campaigns:
            counts[spec.tool] += spec.shards
        total = sum(counts.values())
        shares = {t: c / total for t, c in counts.items()}
        assert abs(shares.get(Tool.MASSCAN, 0) - 0.205) < 0.08
        assert abs(shares.get(Tool.MIRAI, 0) - 0.149) < 0.08
        assert shares.get(Tool.UNKNOWN, 0) > 0.3

    def test_mirai_campaigns_residential(self, sim2020):
        for spec in sim2020.campaigns:
            if spec.tool == Tool.MIRAI:
                assert spec.scanner_type == ScannerType.RESIDENTIAL

    def test_institutional_have_orgs(self, sim2020):
        inst = [c for c in sim2020.campaigns
                if c.scanner_type == ScannerType.INSTITUTIONAL]
        assert inst
        assert all(c.organisation for c in inst)
        assert all(c.tool == Tool.ZMAP for c in inst)

    def test_institutional_fast(self, sim2020):
        inst_rates = [c.rate_pps for c in sim2020.campaigns
                      if c.scanner_type == ScannerType.INSTITUTIONAL]
        other_rates = [c.rate_pps for c in sim2020.campaigns
                       if c.scanner_type != ScannerType.INSTITUTIONAL]
        assert np.mean(inst_rates) > 10 * np.median(other_rates)

    def test_event_ports_have_campaigns(self, sim2020):
        cfg = sim2020.config
        assert cfg.events
        for event in cfg.events:
            hits = [c for c in sim2020.campaigns if c.ports == (event.port,)]
            assert hits, event.name

    def test_sharded_campaigns_exist(self, sim2020):
        assert any(c.shards > 1 for c in sim2020.campaigns)

    def test_shard_sources_clustered(self, sim2020):
        for spec in sim2020.campaigns:
            if spec.shards > 1:
                ips = np.array(spec.src_ips, dtype=np.int64)
                assert ips.max() - ips.min() < 65536  # one subnet-ish

    def test_campaign_starts_within_period(self, sim2020):
        period = sim2020.config.days * 86400.0
        for spec in sim2020.campaigns:
            assert 0 <= spec.start < period


class TestDeterminism:
    def test_same_seed_same_world(self, telescope, registry):
        a = TelescopeWorld(telescope=telescope, registry=registry, rng=99)
        b = TelescopeWorld(telescope=telescope, registry=registry, rng=99)
        ra = a.simulate_year(2016, days=5, max_packets=30_000, min_scans=60)
        rb = b.simulate_year(2016, days=5, max_packets=30_000, min_scans=60)
        assert len(ra.batch) == len(rb.batch)
        assert np.array_equal(ra.batch.seq, rb.batch.seq)
        assert np.array_equal(ra.batch.src_ip, rb.batch.src_ip)

    def test_different_seeds_differ(self, telescope, registry):
        a = TelescopeWorld(telescope=telescope, registry=registry, rng=1)
        b = TelescopeWorld(telescope=telescope, registry=registry, rng=2)
        ra = a.simulate_year(2016, days=5, max_packets=30_000, min_scans=60)
        rb = b.simulate_year(2016, days=5, max_packets=30_000, min_scans=60)
        assert not np.array_equal(ra.batch.src_ip[:100], rb.batch.src_ip[:100])


class TestYearSpecifics:
    def test_ingress_blocks_23_445_post_2017(self, world):
        res = world.simulate_year(2018, days=5, max_packets=40_000, min_scans=80)
        ports = set(np.unique(res.batch.dst_port).tolist())
        assert 23 not in ports
        assert 445 not in ports

    def test_2015_has_23_traffic(self, world):
        res = world.simulate_year(2015, days=5, max_packets=40_000, min_scans=80)
        ports = set(np.unique(res.batch.dst_port).tolist())
        assert 23 in ports  # pre-Mirai years keep telnet visible

    def test_no_mirai_fingerprint_2015(self, world):
        res = world.simulate_year(2015, days=5, max_packets=40_000, min_scans=80)
        mirai_frac = np.mean(res.batch.seq == res.batch.dst_ip)
        assert mirai_frac < 0.02

    def test_config_override(self, world):
        cfg = year_config(2019, days=4)
        res = world.simulate_year(0, config=cfg, max_packets=30_000, min_scans=50)
        assert res.year == 2019
        assert res.days == 4
