"""Tests for the ``repro.serve`` analysis service.

The contracts under test:

* job identity is the capture's content key — N concurrent identical
  submissions coalesce into exactly one execution (the acceptance
  criterion, proven at N=100 with the CaptureCache's own hit counters);
* a queue restarted over a killed server's state directory requeues the
  in-flight job and its worker re-attaches to the flushed streaming
  checkpoint instead of recomputing;
* worker death retries on a fresh pool; failures, cancellation and done
  records behave and persist as documented;
* scenarios cache derived analyses under a config hash that moves with
  the spec;
* the HTTP surface serves reports byte-identical to the CLI, in both
  text and JSON form, and streams stats over SSE.
"""

import dataclasses
import json
import os
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro import __version__
from repro.cli import main
from repro.core.report import paper_report
from repro.core.volatility import METRICS
from repro.exec import CaptureCache
from repro.reporting import (
    paper_report_to_json,
    render_paper_report,
    render_report_doc,
)
from repro.serve import (
    SERVE_SCHEMA_VERSION,
    JobQueue,
    JobSpec,
    ScenarioStore,
    config_hash,
    create_server,
    run_stream_report,
)
from repro.simulation import TelescopeWorld

#: Tiny budgets — several tests run real simulations in worker processes.
SPEC = dict(year=2016, days=3, max_packets=6_000, min_scans=40, seed=5)

#: Larger capture for the checkpoint re-attach test: it must span more
#: than one default-size streaming window so the staged checkpoint is
#: genuinely partial.
# Big enough that the realised capture spans more than one default stream
# batch window (65 536 packets) — a one-window capture cannot produce a
# genuinely partial checkpoint.
BIG_SPEC = dict(year=2016, days=6, max_packets=200_000, min_scans=120, seed=5)


# ---------------------------------------------------------------------------
# Module-level task hooks: the fork start method pickles them by reference,
# so they run verbatim inside pool workers.

def _task_ok(payload):
    return {"kind": "ok", "spec": payload["spec"]}


def _task_raise_once(payload):
    sentinel = Path(payload["cache_dir"]).parent / "raised-once"
    if not sentinel.exists():
        sentinel.write_text("x")
        raise ValueError("boom")
    return {"kind": "ok"}


def _task_die_once(payload):
    sentinel = Path(payload["cache_dir"]).parent / "died-once"
    if not sentinel.exists():
        sentinel.write_text("x")
        os._exit(3)  # simulate an OOM-killed / segfaulted worker
    return {"kind": "survived"}


def _task_die_always(payload):
    os._exit(3)


def _task_block(payload):
    """Block until the test drops a release file (bounded at 30 s)."""
    release = Path(payload["cache_dir"]).parent / "release"
    deadline = time.monotonic() + 30.0
    while not release.exists() and time.monotonic() < deadline:
        time.sleep(0.02)
    return {"kind": "released"}


def _spin_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


class TestJobSpec:
    def test_defaults_validate(self):
        JobSpec().validate()

    @pytest.mark.parametrize("field,value", [
        ("kind", "transmogrify"),
        ("year", 1999),
        ("days", 0),
        ("max_packets", 0),
        ("min_scans", -1),
    ])
    def test_invalid_fields_rejected(self, field, value):
        with pytest.raises(ValueError):
            JobSpec(**{field: value}).validate()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="max_packet"):
            JobSpec.from_dict({"kind": "simulate", "max_packet": 10})

    def test_from_dict_rejects_wrong_types(self):
        with pytest.raises(ValueError):
            JobSpec.from_dict({"year": "2020"})
        with pytest.raises(ValueError):
            JobSpec.from_dict({"days": True})

    def test_round_trip(self):
        spec = JobSpec(kind="analyze", **SPEC)
        assert JobSpec.from_dict(spec.to_dict()) == spec


class TestJobKeys:
    def test_kind_and_seed_split_keys(self, tmp_path):
        with JobQueue(tmp_path / "cache", workers=1) as queue:
            base = queue.job_key(JobSpec(kind="simulate", **SPEC))
            assert queue.job_key(JobSpec(kind="analyze", **SPEC)) != base
            other = dict(SPEC, seed=6)
            assert queue.job_key(JobSpec(kind="simulate", **other)) != base

    def test_keys_stable_across_queue_instances(self, tmp_path):
        spec = JobSpec(kind="stream-report", **SPEC)
        with JobQueue(tmp_path / "a", workers=1) as q1:
            with JobQueue(tmp_path / "b", workers=1) as q2:
                assert q1.job_key(spec) == q2.job_key(spec)


class TestDedupUnderConcurrency:
    def test_100_concurrent_identical_submissions_execute_once(self, tmp_path):
        spec = JobSpec(kind="simulate", **SPEC)
        n = 100
        records = [None] * n
        barrier = threading.Barrier(n)
        with JobQueue(tmp_path / "cache", state_dir=tmp_path / "state",
                      workers=2) as queue:
            def submit(i):
                barrier.wait()
                records[i] = queue.submit(spec)

            threads = [threading.Thread(target=submit, args=(i,))
                       for i in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            assert len({rec.job_id for rec in records}) == 1
            rec = queue.wait(records[0].job_id, timeout=180)
            assert rec.state.value == "done"
            # the one execution synthesized (no prior cache entry existed)
            assert rec.result["capture"]["cache_hit"] is False
            counters = queue.stats()["counters"]
            assert counters["submissions"] == n
            assert counters["dedup_hits"] == n - 1
            assert counters["executed"] == 1

        # Exactly one simulation ran: the shared cache holds exactly one
        # capture, and loading it is a pure hit on a fresh counter.
        cache = CaptureCache(tmp_path / "cache")
        assert len(cache.entries()) == 1
        world = TelescopeWorld(rng=spec.seed)
        key = cache.key_for(world, spec.year, days=spec.days,
                            max_packets=spec.max_packets,
                            min_scans=spec.min_scans)
        assert cache.load(key, world) is not None
        assert (cache.hits, cache.misses) == (1, 0)

    def test_second_kind_reuses_the_cached_capture(self, tmp_path):
        """A different-kind job over the same capture is a capture-cache hit."""
        with JobQueue(tmp_path / "cache", workers=1) as queue:
            first = queue.wait(
                queue.submit(JobSpec(kind="simulate", **SPEC)).job_id,
                timeout=180,
            )
            assert first.result["capture"]["cache_hit"] is False
            second = queue.wait(
                queue.submit(JobSpec(kind="analyze", **SPEC)).job_id,
                timeout=180,
            )
            assert second.state.value == "done"
            assert second.result["capture"]["cache_hit"] is True
            assert second.result["capture"]["key"] == first.result["capture"]["key"]
            assert "report" in second.result
            assert "report_text" in second.result
            assert second.result["fingerprints"]


class TestRetryAndFailure:
    def test_worker_death_retries_on_a_fresh_pool(self, tmp_path):
        with JobQueue(tmp_path / "cache", workers=1, max_retries=1,
                      task=_task_die_once) as queue:
            rec = queue.wait(
                queue.submit(JobSpec(kind="simulate", **SPEC)).job_id,
                timeout=60,
            )
            assert rec.state.value == "done"
            assert rec.result == {"kind": "survived"}
            assert rec.attempts == 2
            assert queue.stats()["counters"]["retries"] == 1

    def test_retry_budget_exhausts_to_failed(self, tmp_path):
        with JobQueue(tmp_path / "cache", workers=1, max_retries=1,
                      task=_task_die_always) as queue:
            rec = queue.wait(
                queue.submit(JobSpec(kind="simulate", **SPEC)).job_id,
                timeout=60,
            )
            assert rec.state.value == "failed"
            assert "worker process died" in rec.error
            assert rec.attempts == 2

    def test_exception_fails_and_resubmission_revives(self, tmp_path):
        spec = JobSpec(kind="simulate", **SPEC)
        with JobQueue(tmp_path / "cache", workers=1,
                      task=_task_raise_once) as queue:
            rec = queue.wait(queue.submit(spec).job_id, timeout=60)
            assert rec.state.value == "failed"
            assert rec.error == "ValueError: boom"
            # resubmitting a failed job is the retry-after-failure path
            rec = queue.wait(queue.submit(spec).job_id, timeout=60)
            assert rec.state.value == "done"
            assert rec.result == {"kind": "ok"}


class TestCancel:
    def test_cancel_applies_to_queued_jobs_only(self, tmp_path):
        # The executor stages one extra work item beyond the worker count,
        # and a staged future is no longer cancellable — so queue enough
        # jobs that at least one genuinely waits behind the buffer.
        first_spec = JobSpec(kind="simulate", **SPEC)
        extra_specs = [JobSpec(kind="simulate", **dict(SPEC, seed=100 + i))
                       for i in range(4)]
        with JobQueue(tmp_path / "cache", workers=1,
                      task=_task_block) as queue:
            first = queue.submit(first_spec)
            assert _spin_until(lambda: first.status == "running")
            extras = [queue.submit(spec) for spec in extra_specs]
            waiting = next(rec for rec in extras if rec.status == "queued")
            # running jobs cannot be cancelled; queued ones can
            assert queue.cancel(first.job_id) is False
            assert queue.cancel(waiting.job_id) is True
            assert queue.get(waiting.job_id).status == "cancelled"
            (tmp_path / "release").write_text("go")
            first = queue.wait(first.job_id, timeout=60)
            assert first.state.value == "done"
            assert queue.cancel(first.job_id) is False
            # a cancelled job revives on resubmission
            waiting_spec = extra_specs[extras.index(waiting)]
            revived = queue.wait(queue.submit(waiting_spec).job_id, timeout=60)
            assert revived.state.value == "done"


class TestPersistence:
    def test_done_records_survive_restart(self, tmp_path):
        spec = JobSpec(kind="simulate", **SPEC)
        cache_dir, state_dir = tmp_path / "cache", tmp_path / "state"
        with JobQueue(cache_dir, state_dir=state_dir, workers=1,
                      task=_task_ok) as q1:
            rec = q1.wait(q1.submit(spec).job_id, timeout=60)
            assert rec.state.value == "done"
            job_id, result = rec.job_id, rec.result
        with JobQueue(cache_dir, state_dir=state_dir, workers=1,
                      task=_task_ok) as q2:
            restored = q2.get(job_id)
            assert restored is not None
            assert restored.state.value == "done"
            assert restored.result == result
            counters = q2.stats()["counters"]
            assert counters["restored"] == 1
            assert counters["executed"] == 0
            # resubmission is a dedup hit served from the restored record
            assert q2.submit(spec) is restored
            assert q2.stats()["counters"]["dedup_hits"] == 1

    def test_version_mismatch_records_are_skipped(self, tmp_path):
        state_dir = tmp_path / "state"
        jobs_dir = state_dir / "jobs"
        jobs_dir.mkdir(parents=True)
        (jobs_dir / "stale.json").write_text(json.dumps({
            "schema": SERVE_SCHEMA_VERSION, "version": "0.0.0-old",
            "job_id": "stale", "spec": JobSpec().to_dict(),
            "state": "done", "attempts": 1, "error": None, "result": {},
        }))
        with JobQueue(tmp_path / "cache", state_dir=state_dir, workers=1,
                      task=_task_ok) as queue:
            assert queue.get("stale") is None
            assert queue.stats()["counters"]["restored"] == 0


class TestKillAndRestart:
    def test_restart_reattaches_to_in_flight_checkpoint(self, tmp_path, capsys):
        """The acceptance path: a server killed mid-stream leaves a queued
        record and a flushed partial checkpoint; the restarted queue
        requeues the job and its worker resumes from the checkpoint —
        and the resumed report is still byte-identical to the batch CLI.
        """
        cache_dir, state_dir = tmp_path / "cache", tmp_path / "state"
        sim_spec = JobSpec(kind="simulate", **BIG_SPEC)
        stream_spec = JobSpec(kind="stream-report", **BIG_SPEC)
        with JobQueue(cache_dir, state_dir=state_dir, workers=1) as q1:
            rec = q1.wait(q1.submit(sim_spec).job_id, timeout=300)
            assert rec.state.value == "done"
            capture_path = rec.result["capture"]["path"]
            capture_packets = rec.result["capture"]["packets"]
            stream_id = q1.job_key(stream_spec)

        # Stage what a killed worker leaves behind: the identical service
        # pass (same parameters, same checkpoint key via run_stream_report)
        # interrupted after its first committed window.
        partial = run_stream_report(
            capture_path, year=stream_spec.year, days=stream_spec.days,
            checkpoint_dir=str(state_dir / "checkpoints"),
            stop=lambda: True,
        )
        assert partial.interrupted
        assert 0 < partial.stats.packets < capture_packets
        assert partial.checkpoint_path is not None

        # ... and the record a crashed server leaves: persisted job state
        # never says "running", so an in-flight job is on disk as queued.
        (state_dir / "jobs" / f"{stream_id}.json").write_text(json.dumps({
            "schema": SERVE_SCHEMA_VERSION, "version": __version__,
            "job_id": stream_id, "spec": stream_spec.to_dict(),
            "state": "queued", "attempts": 1, "error": None, "result": None,
        }))

        with JobQueue(cache_dir, state_dir=state_dir, workers=1) as q2:
            assert q2.stats()["counters"]["requeued"] == 1
            rec = q2.wait(stream_id, timeout=300)
            assert rec.state.value == "done"
            assert rec.result["stream"]["resumed"] is True
            assert rec.result["capture"]["cache_hit"] is True

        # Byte parity survived the interrupt + re-attach.
        assert main(["analyze", capture_path, "--report"]) == 0
        batch_text = capsys.readouterr().out.rstrip("\n")
        assert rec.result["report_text"] == batch_text


class TestScenarios:
    def test_config_hash_ignores_kind(self):
        assert config_hash(JobSpec(kind="simulate", **SPEC)) == \
            config_hash(JobSpec(kind="stream-report", **SPEC))
        assert config_hash(JobSpec(**SPEC)) != \
            config_hash(JobSpec(**dict(SPEC, days=4)))

    def test_update_bumps_revision_and_drops_derived(self, tmp_path):
        store = ScenarioStore(tmp_path)
        spec = JobSpec(kind="stream-report", **SPEC)
        scenario = store.put("acme", "base", spec)
        assert scenario.revision == 1
        store.cache_derived(scenario, {"report": {"scans": 1}})
        assert scenario.cached_payload() == {"report": {"scans": 1}}
        # unchanged spec: no-op, cache kept
        assert store.put("acme", "base", spec) is scenario
        assert scenario.cached_payload() is not None
        # changed spec: new revision, cache invalidated
        updated = store.put(
            "acme", "base", dataclasses.replace(spec, days=4)
        )
        assert updated.revision == 2
        assert updated.cached_payload() is None
        assert updated.config_hash != scenario.config_hash

    @pytest.mark.parametrize("name", ["", "a/b", "../x", ".hidden", "a" * 65])
    def test_unsafe_names_rejected(self, tmp_path, name):
        store = ScenarioStore(tmp_path)
        with pytest.raises(ValueError):
            store.put("acme", name, JobSpec(**SPEC))
        with pytest.raises(ValueError):
            store.put(name, "ok", JobSpec(**SPEC))

    def test_persistence_across_restart(self, tmp_path):
        spec = JobSpec(kind="stream-report", **SPEC)
        store = ScenarioStore(tmp_path)
        scenario = store.put("acme", "base", spec)
        store.cache_derived(scenario, {"report": {"scans": 2}})
        reopened = ScenarioStore(tmp_path)
        restored = reopened.get("acme", "base")
        assert restored is not None
        assert restored.spec == spec
        assert restored.cached_payload() == {"report": {"scans": 2}}
        assert reopened.tenants() == ["acme"]
        assert reopened.count() == 1
        assert reopened.delete("acme", "base") is True
        assert ScenarioStore(tmp_path).get("acme", "base") is None


class TestReportJsonPin:
    """Pin ``paper_report_to_json`` field-for-field against the text tables.

    The text renderer prints every scalar with ``repr`` (shortest
    round-trip form); the JSON twin coerces to native float/int, so each
    text line must contain exactly the repr of the corresponding JSON
    value — any drift between the two renderings fails here.
    """

    @pytest.fixture(scope="class")
    def rendered(self, analysis2020):
        report = paper_report(analysis2020)
        return (report, paper_report_to_json(report),
                render_paper_report(report))

    def test_header_counts(self, rendered):
        report, doc, text = rendered
        assert f"year={doc['year']}  days={doc['days']}" in text
        assert f"study packets: {doc['packets']}" in text
        assert f"study scans: {doc['scans']}" in text

    def test_trend_scalars(self, rendered):
        report, doc, text = rendered
        trends = doc["trends"]
        assert (
            "classic port share (22/80/8080): "
            f"{trends['classic_port_share']!r}"
        ) in text
        assert f"port entropy (bits): {trends['port_entropy']!r}" in text
        assert f"country entropy (bits): {trends['country_entropy']!r}" in text
        conc = trends["concentration"]
        assert conc is not None
        assert (
            f"concentration: gini={conc['gini']!r} "
            f"top1%={conc['top_1pct_share']!r} "
            f"top10%={conc['top_10pct_share']!r} "
            f"share_for_80pct={conc['share_for_80pct']!r}"
        ) in text
        intensity = trends["intensity"]
        assert intensity is not None
        assert (
            f"intensity: median_packets={intensity['median_packets']!r} "
            f"mean_packets={intensity['mean_packets']!r} "
            f"median_duration_s={intensity['median_duration_s']!r} "
            f"mean_duration_s={intensity['mean_duration_s']!r}"
        ) in text

    def test_volatility_rows(self, rendered):
        report, doc, text = rendered
        assert set(doc["volatility"]) == set(METRICS)
        for metric in METRICS:
            row = doc["volatility"][metric]
            assert row["metric"] == metric
            line = next(l for l in text.splitlines()
                        if l.strip().startswith(metric))
            for value in (row["pairs"], repr(row["fraction_stable"]),
                          repr(row["fraction_at_least_2x"]),
                          repr(row["fraction_at_least_3x"])):
                assert str(value) in line
            # the JSON additionally carries the CDF series the text omits
            assert len(row["cdf"]["values"]) == len(row["cdf"]["cdf"])

    def test_recurrence_fields(self, rendered):
        report, doc, text = rendered
        overall = doc["recurrence"]["overall"]
        assert f"sources: {overall['sources']}" in text
        assert f"fraction recurring: {overall['fraction_recurring']!r}" in text
        assert (
            f"fraction >100 scans: {overall['fraction_over_100_scans']!r}"
        ) in text
        assert (
            "downtime within a day: "
            f"{overall['fraction_downtime_within_day']!r}"
        ) in text
        assert (
            f"daily-mode fraction: {overall['daily_mode_fraction']!r}"
        ) in text
        assert (
            "institutional daily scanners: "
            f"{doc['recurrence']['institutional_daily']}"
        ) in text
        for name, stats in doc["recurrence"]["by_type"].items():
            assert (
                f"{name}: sources={stats['sources']} "
                f"recurring={stats['fraction_recurring']!r} "
                f"over_100={stats['fraction_over_100_scans']!r}"
            ) in text

    def test_churn_fields(self, rendered):
        report, doc, text = rendered
        churn = doc["churn"]
        assert f"distinct sources: {churn['distinct_sources']}" in text
        assert churn["curve"][-1] == churn["distinct_sources"]
        fit = churn["fit"]
        assert fit is not None
        assert f"fitted population: {fit['population']!r}" in text
        assert f"fitted lifetime (days): {fit['lifetime_days']!r}" in text
        assert f"inflation factor: {fit['inflation_factor']!r}" in text

    def test_doc_survives_json_round_trip_exactly(self, rendered):
        report, doc, text = rendered
        assert json.loads(render_report_doc(doc)) == doc


# ---------------------------------------------------------------------------
# HTTP surface: one module-scoped server doing real (tiny) computations.

@pytest.fixture(scope="module")
def server(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("serve-http")
    srv = create_server(port=0, state_dir=tmp / "state", workers=2)
    threading.Thread(target=srv.serve_forever, daemon=True).start()
    yield srv
    srv.app.close()
    srv.shutdown()
    srv.server_close()


def _request(server, method, path, body=None):
    host, port = server.server_address[:2]
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        f"http://{host}:{port}{path}", data=data, method=method
    )
    try:
        with urllib.request.urlopen(req, timeout=300) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode()


class TestHTTPApi:
    def test_health_and_stats(self, server):
        status, body = _request(server, "GET", "/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"
        status, body = _request(server, "GET", "/stats")
        doc = json.loads(body)
        assert status == 200
        assert doc["workers"] == 2
        assert "queue_depth" in doc
        assert "capture_cache" in doc
        assert doc["version"] == __version__

    def test_bad_job_submissions(self, server):
        status, body = _request(server, "POST", "/jobs", {"kind": "nope"})
        assert status == 400
        status, body = _request(server, "POST", "/jobs", {"yeer": 2020})
        assert status == 400
        assert "yeer" in json.loads(body)["error"]
        status, _ = _request(server, "GET", "/jobs/deadbeef")
        assert status == 404

    def test_scenario_report_parity_with_cli(self, server, capsys):
        """The acceptance criterion: the HTTP report is byte-identical to
        the CLI's, in both JSON and text renderings."""
        status, _ = _request(
            server, "PUT", "/scenarios/acme/smoke", dict(SPEC)
        )
        assert status == 200
        status, http_json = _request(
            server, "GET", "/scenarios/acme/smoke/report?format=json&wait=240"
        )
        assert status == 200
        status, http_text = _request(
            server, "GET", "/scenarios/acme/smoke/report?format=text"
        )
        assert status == 200

        # find the capture the job produced, then run the CLI over it
        status, body = _request(server, "GET", "/jobs")
        jobs = json.loads(body)["jobs"]
        assert any(job["status"] == "done" for job in jobs)
        done = next(j for j in jobs if j["spec"]["kind"] == "stream-report")
        status, body = _request(server, "GET", f"/jobs/{done['job_id']}")
        capture_path = json.loads(body)["job"]["result"]["capture"]["path"]

        assert main(["analyze", capture_path, "--report", "--json"]) == 0
        assert http_json == capsys.readouterr().out
        assert main(["analyze", capture_path, "--report"]) == 0
        assert http_text == capsys.readouterr().out

    def test_identical_submission_dedups_against_scenario_job(self, server):
        # runs after the report test: the same config as a direct job
        # submission coalesces with the scenario's completed job
        status, body = _request(
            server, "POST", "/jobs", dict(SPEC, kind="stream-report")
        )
        assert status == 200
        assert json.loads(body)["job"]["status"] == "done"
        status, body = _request(server, "GET", "/stats")
        assert json.loads(body)["counters"]["dedup_hits"] >= 1

    def test_scenario_update_invalidates_cached_report(self, server):
        status, body = _request(server, "GET", "/scenarios/acme/smoke")
        assert status == 200
        assert json.loads(body)["scenario"]["report_cached"] is True
        status, body = _request(
            server, "PUT", "/scenarios/acme/smoke", dict(SPEC, days=4)
        )
        assert status == 200
        doc = json.loads(body)["scenario"]
        assert doc["revision"] == 2
        assert doc["report_cached"] is False
        # restore the original config: cache was dropped on update
        status, body = _request(
            server, "PUT", "/scenarios/acme/smoke", dict(SPEC)
        )
        assert json.loads(body)["scenario"]["report_cached"] is False

    def test_scenario_validation_and_404s(self, server):
        status, _ = _request(server, "PUT", "/scenarios/acme/..", dict(SPEC))
        assert status == 400
        status, _ = _request(server, "PUT", "/scenarios/acme/bad",
                             {"yeer": 1})
        assert status == 400
        status, _ = _request(server, "GET", "/scenarios/acme/ghost/report")
        assert status == 404
        status, _ = _request(server, "GET", "/nope")
        assert status == 404

    def test_sse_stats_stream(self, server):
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}/stats/live?interval=0.05&count=2"
        with urllib.request.urlopen(url, timeout=30) as resp:
            assert resp.headers["Content-Type"].startswith("text/event-stream")
            raw = resp.read().decode()
        events = [frame for frame in raw.split("\n\n") if frame.strip()]
        assert len(events) == 2
        for event in events:
            lines = event.splitlines()
            assert lines[0] == "event: stats"
            payload = json.loads(lines[1][len("data: "):])
            assert "queue_depth" in payload
