"""Unit tests for the per-year calibration configs."""

import numpy as np
import pytest

from repro.enrichment.types import ScannerType
from repro.scanners.base import Tool
from repro.simulation import (
    ALL_YEARS,
    ShardingSpec,
    SpeedSpec,
    all_year_configs,
    year_config,
)
from repro.simulation.config import DisclosureEvent, _TOOL_SCAN_SHARE


class TestSpeedSpec:
    def test_floor_enforced(self, rng):
        spec = SpeedSpec(median_pps=50.0, sigma=0.1, floor_pps=120.0)
        draws = spec.sample(rng, 1000)
        assert draws.min() >= 120.0

    def test_cap_enforced(self, rng):
        spec = SpeedSpec(median_pps=1e6, sigma=2.0, cap_pps=2e6)
        draws = spec.sample(rng, 1000)
        assert draws.max() <= 2e6

    def test_median_roughly_right(self, rng):
        spec = SpeedSpec(median_pps=1000.0, sigma=0.5)
        draws = spec.sample(rng, 20_000)
        assert 900 < np.median(draws) < 1100

    def test_multiplier(self, rng):
        spec = SpeedSpec(median_pps=1000.0, sigma=0.3)
        fast = spec.sample(rng, 5000, multiplier=4.0)
        assert 3400 < np.median(fast) < 4600


class TestShardingSpec:
    def test_no_sharding(self, rng):
        spec = ShardingSpec()
        assert np.all(spec.sample_shards(rng, 100) == 1)
        assert spec.mean_shards() == 1.0

    def test_sharded_mean(self, rng):
        spec = ShardingSpec(prob_sharded=1.0, mean_extra_shards=4.0)
        shards = spec.sample_shards(rng, 20_000)
        assert shards.min() >= 2
        assert abs(shards.mean() - 5.0) < 0.25

    def test_shard_cap(self, rng):
        spec = ShardingSpec(prob_sharded=1.0, mean_extra_shards=1000.0)
        assert spec.sample_shards(rng, 100).max() <= 256


class TestDisclosureEvent:
    def test_surge_decays(self):
        event = DisclosureEvent("x", 443, 5, magnitude=40.0, decay_days=5.0)
        assert event.surge_factor(0) == pytest.approx(40.0)
        assert event.surge_factor(5) == pytest.approx(20.0)
        assert event.surge_factor(-1) == 0.0
        assert event.surge_factor(50) < 0.05


class TestYearConfigs:
    def test_all_years_buildable(self):
        configs = all_year_configs()
        assert sorted(configs) == list(ALL_YEARS)

    def test_out_of_range_year(self):
        with pytest.raises(ValueError):
            year_config(2014)
        with pytest.raises(ValueError):
            year_config(2025)

    def test_days_bounds(self):
        with pytest.raises(ValueError):
            year_config(2020, days=0)
        with pytest.raises(ValueError):
            year_config(2020, days=62)

    @pytest.mark.parametrize("year", ALL_YEARS)
    def test_cohort_shares_sane(self, year):
        cfg = year_config(year)
        scan_total = sum(c.scan_share for c in cfg.cohorts)
        assert 0.5 < scan_total <= 1.2
        pkt_total = sum(c.packet_share for c in cfg.cohorts)
        assert 0.5 < pkt_total <= 1.01

    @pytest.mark.parametrize("year", ALL_YEARS)
    def test_tool_weights_positive(self, year):
        for cohort in year_config(year).cohorts:
            assert sum(cohort.tool_weights.values()) > 0

    def test_mirai_absent_before_2017(self):
        for year in (2015, 2016):
            cfg = year_config(year)
            assert all(c.name != "residential_botnet" for c in cfg.cohorts)
            assert cfg.background_mirai_fraction <= 0.05

    def test_mirai_dominant_2017(self):
        cfg = year_config(2017)
        botnet = next(c for c in cfg.cohorts if c.name == "residential_botnet")
        assert botnet.scan_share == pytest.approx(0.465)
        assert botnet.scanner_type == ScannerType.RESIDENTIAL
        assert botnet.tool_weights == {Tool.MIRAI: 1.0}

    def test_packet_volume_growth_30x(self):
        first = year_config(2015).packets_per_day
        last = year_config(2024).packets_per_day
        assert last / first == pytest.approx(345 / 11, rel=0.01)

    def test_scan_growth_39x(self):
        first = year_config(2015).scans_per_month
        last = year_config(2024).scans_per_month
        assert last / first == pytest.approx(39.4, rel=0.05)

    def test_sharding_grows_over_years(self):
        early = year_config(2016).cohorts[0].sharding.mean_shards()
        late = year_config(2024).cohorts[0].sharding.mean_shards()
        assert late > early * 2

    def test_institutional_share_ramps(self):
        assert year_config(2015).institutional.packet_share < 0.1
        assert year_config(2023).institutional.packet_share >= 0.45

    def test_fingerprintable_drop_2023(self):
        assert year_config(2022).institutional.fingerprintable_fraction == 1.0
        assert year_config(2024).institutional.fingerprintable_fraction < 0.5

    def test_alias_adoption_trend(self):
        """§5.1: 80→8080 coupling 18% (2015) → ~87% (2020+)."""
        hosting_2015 = next(c for c in year_config(2015).cohorts
                            if c.name == "hosting_fast")
        hosting_2020 = next(c for c in year_config(2020).cohorts
                            if c.name == "hosting_fast")
        assert hosting_2015.alias_adoption == pytest.approx(0.18)
        assert hosting_2020.alias_adoption == pytest.approx(0.87)

    def test_events_exist_for_most_years(self):
        with_events = [y for y in ALL_YEARS if year_config(y).events]
        assert len(with_events) >= 8

    def test_event_ports_valid(self):
        for year in ALL_YEARS:
            for event in year_config(year).events:
                assert 0 < event.port < 65536
                assert 0 <= event.day_offset < year_config(year).days

    def test_port_country_overrides_present(self):
        cfg = year_config(2022)
        assert 3389 in cfg.port_country_overrides
        assert cfg.port_country_overrides[3389]["CN"] >= 0.7
        assert 8545 in cfg.port_country_overrides
        assert cfg.port_country_overrides[8545]["VN"] >= 0.5

    def test_http_us_abandonment(self):
        """§5.4: the US very active on HTTP 2016–2018, gone by 2019."""
        us_2017 = year_config(2017).port_country_overrides[80]["US"]
        us_2019 = year_config(2019).port_country_overrides[80]["US"]
        assert us_2017 > 0.3
        assert us_2019 < 0.1

    def test_table1_tool_shares_recorded(self):
        """Spot-check the Table 1 transcription."""
        assert _TOOL_SCAN_SHARE[2015][Tool.NMAP] == pytest.approx(0.317)
        assert _TOOL_SCAN_SHARE[2017][Tool.MIRAI] == pytest.approx(0.465)
        assert _TOOL_SCAN_SHARE[2024][Tool.ZMAP] == pytest.approx(0.59)

    def test_scaling_respects_budget(self):
        cfg = year_config(2024)
        scaled = cfg.scaled(max_packets=100_000)
        assert scaled.period_packets <= 100_000 * 1.001
        assert 0 < scaled.scale <= 5e-3

    def test_scaling_cap_for_light_years(self):
        cfg = year_config(2015)
        scaled = cfg.scaled(max_packets=10**9)
        assert scaled.scale == pytest.approx(5e-3)
