"""Tests for repro.stream.sharded — source-sharded parallel streaming.

The load-bearing property is the *shard-merge invariant*: the merged
per-shard tables must be column-by-column bit-identical to batch
``identify_scans`` at any shard count and any window size, because sessions
are a per-source construct and shards partition the sources.
"""

import numpy as np
import pytest

from repro.core.campaigns import CampaignCriteria, identify_scans
from repro.core.fingerprints import ToolFingerprinter
from repro.stream import (
    BatchStreamSource,
    CheckpointStore,
    ShardedStreamEngine,
    StreamConfig,
    TraceStreamSource,
    identify_scans_sharded,
    merge_scan_tables,
    shard_of,
)
from repro.stream.sharded import _run_one_shard
from repro.telescope import write_trace

from tests.test_stream import assert_tables_equal


@pytest.fixture(scope="module")
def batch2020(sim2020):
    return sim2020.batch


@pytest.fixture(scope="module")
def scans2020(batch2020):
    return identify_scans(batch2020)


class TestShardOf:
    def test_in_range_and_deterministic(self):
        gen = np.random.default_rng(5)
        src = gen.integers(0, 2**32, 10_000, dtype=np.uint32)
        for n in (1, 2, 4, 7):
            shards = shard_of(src, n)
            assert shards.min() >= 0 and shards.max() < n
            assert np.array_equal(shards, shard_of(src, n))

    def test_single_shard_takes_everything(self):
        src = np.arange(1000, dtype=np.uint32)
        assert np.all(shard_of(src, 1) == 0)

    def test_adjacent_addresses_spread(self):
        """The multiplicative hash decorrelates sequential allocation: a
        contiguous /24 must not collapse onto one shard."""
        src = (np.uint32(0x0A000000) + np.arange(256)).astype(np.uint32)
        counts = np.bincount(shard_of(src, 4), minlength=4)
        assert np.all(counts > 0)

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            shard_of(np.array([1], dtype=np.uint32), 0)


class TestShardEquivalence:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    @pytest.mark.parametrize("batch_size", [4096, 50_000, None])
    def test_column_equal_to_batch(self, batch2020, scans2020, n_shards,
                                   batch_size):
        table = identify_scans_sharded(
            batch2020, n_shards=n_shards, batch_size=batch_size
        )
        assert_tables_equal(table, scans2020)

    def test_time_windows(self, batch2020, scans2020):
        table = identify_scans_sharded(
            batch2020, n_shards=3, batch_size=8192, window_s=6 * 3600.0
        )
        assert_tables_equal(table, scans2020)

    def test_custom_criteria(self, batch2020):
        criteria = CampaignCriteria(min_distinct_dsts=50, min_rate_pps=10.0,
                                    expiry_s=900.0)
        table = identify_scans_sharded(
            batch2020, n_shards=2, criteria=criteria, batch_size=8192
        )
        assert_tables_equal(table, identify_scans(batch2020, criteria))

    def test_discard_counts_partition(self, batch2020):
        """Per-source discard decisions sum across shards exactly."""
        serial = ShardedStreamEngine(n_shards=1).run(
            BatchStreamSource(batch2020, batch_size=8192)
        )
        sharded = ShardedStreamEngine(n_shards=4).run(
            BatchStreamSource(batch2020, batch_size=8192)
        )
        assert (
            sharded.stats.sessions_discarded
            == serial.stats.sessions_discarded
        )
        assert sharded.stats.packets == len(batch2020)
        assert sharded.stats.peak_open_session_bytes > 0

    def test_worker_processes_match(self, tmp_path, batch2020, scans2020):
        """One real process-pool run: workers re-open the trace by path."""
        path = tmp_path / "cap.rtrace"
        write_trace(path, batch2020, meta={"year": 2020}, chunk_size=25_000)
        engine = ShardedStreamEngine(n_shards=2, workers=2)
        result = engine.run(TraceStreamSource(path, batch_size=16_384))
        assert_tables_equal(result.scans, scans2020)
        assert len(result.shards) == 2
        assert result.stats.packets == len(batch2020)
        for run in result.shards:
            assert run.stats.peak_rss_bytes > 0

    def test_workers_need_a_path_backed_source(self, batch2020):
        engine = ShardedStreamEngine(n_shards=2, workers=1)
        with pytest.raises(ValueError):
            engine.run(BatchStreamSource(batch2020, batch_size=8192))

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ShardedStreamEngine(n_shards=0)
        with pytest.raises(ValueError):
            ShardedStreamEngine(workers=-1)


class TestMerge:
    def test_merge_reorders_into_serial_order(self, batch2020, scans2020):
        """Splitting the expected table by shard and merging restores it."""
        shards = shard_of(scans2020.src_ip, 3)
        parts = [scans2020.select(shards == s) for s in range(3)]
        assert_tables_equal(merge_scan_tables(parts), scans2020)

    def test_merge_empty(self):
        from repro.core.campaigns import ScanTable

        assert len(merge_scan_tables([])) == 0
        assert len(merge_scan_tables([ScanTable.empty()])) == 0

    def test_merge_single_passthrough(self, scans2020):
        assert merge_scan_tables([scans2020]) is scans2020


class TestShardedCheckpoints:
    def _trace(self, tmp_path, batch):
        path = tmp_path / "cap.rtrace"
        write_trace(path, batch, meta={"year": 2020}, chunk_size=10_000)
        return path

    def test_kill_and_resume_per_shard(self, tmp_path, batch2020, scans2020):
        """Every shard dies mid-stream; the rerun resumes all of them and
        still merges bit-identically."""
        path = self._trace(tmp_path, batch2020)
        config = StreamConfig(
            batch_size=8192, checkpoint_dir=tmp_path / "ckpt",
            checkpoint_every=1,
        )
        criteria, fingerprinter = CampaignCriteria(), ToolFingerprinter()

        class Killed(Exception):
            pass

        def killer(shard, stats):
            if stats.windows >= 3:
                raise Killed

        n_shards = 3
        for shard in range(n_shards):
            with pytest.raises(Killed):
                _run_one_shard(
                    TraceStreamSource(path, batch_size=8192), shard,
                    n_shards, criteria, fingerprinter, config,
                    progress=killer,
                )

        engine = ShardedStreamEngine(n_shards=n_shards, config=config)
        result = engine.run(TraceStreamSource(path, batch_size=8192))
        assert result.resumed
        assert all(run.resumed for run in result.shards)
        assert result.stats.resumed_packets > 0
        assert_tables_equal(result.scans, scans2020)

    def test_rerun_after_completion_resumes_every_shard(
        self, tmp_path, batch2020, scans2020
    ):
        path = self._trace(tmp_path, batch2020)
        config = StreamConfig(batch_size=16_384,
                              checkpoint_dir=tmp_path / "ckpt")
        first = ShardedStreamEngine(n_shards=2, config=config).run(
            TraceStreamSource(path, batch_size=16_384)
        )
        again = ShardedStreamEngine(n_shards=2, config=config).run(
            TraceStreamSource(path, batch_size=16_384)
        )
        assert not first.resumed and again.resumed
        # Shards partition the packets, so the resumed total is the capture.
        assert again.stats.resumed_packets == len(batch2020)
        assert_tables_equal(again.scans, first.scans)
        assert_tables_equal(again.scans, scans2020)

    def test_shard_keys_are_distinct(self, tmp_path, batch2020):
        """Shard (i, n) keys never collide with each other, with other
        shard counts, or with the unsharded key."""
        path = self._trace(tmp_path, batch2020)
        store = CheckpointStore(tmp_path / "ckpt")
        source = TraceStreamSource(path, batch_size=8192)
        identity = source.identity()
        fp = ToolFingerprinter()
        criteria = CampaignCriteria()
        keys = {
            store.key_for(identity, criteria, fp, 8192, None),
            store.key_for(identity, criteria, fp, 8192, None, shard=(0, 2)),
            store.key_for(identity, criteria, fp, 8192, None, shard=(1, 2)),
            store.key_for(identity, criteria, fp, 8192, None, shard=(0, 4)),
        }
        assert len(keys) == 4

    def test_shard_snapshot_carries_raw_position(self, tmp_path, batch2020):
        """The extra shard_stream_pos array records the *unfiltered* stream
        position (what skip_packets needs), not the shard's packet count."""
        path = self._trace(tmp_path, batch2020)
        config = StreamConfig(batch_size=8192,
                              checkpoint_dir=tmp_path / "ckpt")
        criteria, fingerprinter = CampaignCriteria(), ToolFingerprinter()
        run = _run_one_shard(
            TraceStreamSource(path, batch_size=8192), 0, 2, criteria,
            fingerprinter, config,
        )
        store = CheckpointStore(config.checkpoint_dir)
        arrays = store.load(run.checkpoint_key)
        assert arrays is not None
        assert int(arrays["shard_stream_pos"][0]) == len(batch2020)
        assert run.stats.packets < len(batch2020)  # shard 0's share only
