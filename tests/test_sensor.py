"""Unit tests for the telescope sensor and its detection model."""

import numpy as np
import pytest

from repro.telescope import (
    AddressSet,
    CidrBlock,
    FLAG_ACK,
    FLAG_SYN,
    IngressPolicy,
    PacketBatch,
    SynPacket,
    Telescope,
    coverage_estimate,
    detection_probability,
    hit_probability_per_probe,
    internet_wide_rate,
    time_to_detection,
)
from repro.telescope.sensor import PAPER_TELESCOPE_SIZE


def packet(dst_ip, dst_port=80, flags=FLAG_SYN, t=0.0):
    return SynPacket(time=t, src_ip=1, dst_ip=dst_ip, src_port=2,
                     dst_port=dst_port, flags=flags)


@pytest.fixture()
def small_telescope():
    return Telescope(AddressSet(range(1000, 1100)))


class TestIngressPolicy:
    def test_inactive_before_2017(self):
        policy = IngressPolicy()
        batch = PacketBatch.from_packets([packet(1000, dst_port=23)])
        assert len(policy.apply(batch, 2016)) == 1

    def test_active_from_2017(self):
        policy = IngressPolicy()
        batch = PacketBatch.from_packets(
            [packet(1000, dst_port=23), packet(1001, dst_port=445),
             packet(1002, dst_port=80)]
        )
        out = policy.apply(batch, 2017)
        assert len(out) == 1
        assert out.dst_port[0] == 80

    def test_custom_ports(self):
        policy = IngressPolicy(blocked_ports=frozenset({8080}), active_since_year=2000)
        batch = PacketBatch.from_packets([packet(1000, dst_port=8080)])
        assert len(policy.apply(batch, 2015)) == 0


class TestTelescope:
    def test_requires_addresses(self):
        with pytest.raises(ValueError):
            Telescope(AddressSet([]))

    def test_observe_filters_outside(self, small_telescope):
        batch = PacketBatch.from_packets([packet(1050), packet(5000)])
        out = small_telescope.observe(batch, 2015)
        assert len(out) == 1
        assert small_telescope.stats.outside_telescope == 1

    def test_observe_drops_backscatter(self, small_telescope):
        batch = PacketBatch.from_packets(
            [packet(1050), packet(1051, flags=FLAG_SYN | FLAG_ACK)]
        )
        out = small_telescope.observe(batch, 2015)
        assert len(out) == 1
        assert small_telescope.stats.backscatter == 1

    def test_observe_applies_ingress(self, small_telescope):
        batch = PacketBatch.from_packets([packet(1050, dst_port=445)])
        assert len(small_telescope.observe(batch, 2020)) == 0
        assert small_telescope.stats.ingress_dropped == 1

    def test_observe_sorts_by_time(self, small_telescope):
        batch = PacketBatch.from_packets([packet(1050, t=5.0), packet(1051, t=1.0)])
        out = small_telescope.observe(batch, 2015)
        assert out.time.tolist() == [1.0, 5.0]

    def test_paper_telescope_size(self):
        t = Telescope.paper_telescope(rng=3)
        assert abs(t.size - PAPER_TELESCOPE_SIZE) < 100

    def test_from_blocks(self):
        t = Telescope.from_blocks([CidrBlock.parse("10.0.0.0/24")])
        assert t.size == 256

    def test_sample_destinations_members(self, small_telescope, rng):
        got = small_telescope.sample_destinations(rng, 50)
        assert np.all(small_telescope.monitored.contains_array(got))

    def test_stats_accumulate(self, small_telescope):
        batch = PacketBatch.from_packets([packet(1050)])
        small_telescope.observe(batch, 2015)
        small_telescope.observe(batch, 2015)
        assert small_telescope.stats.scan_probes == 2


class TestDetectionModel:
    def test_hit_probability(self):
        assert hit_probability_per_probe(2**16) == pytest.approx(2**16 / 2**32)

    def test_paper_claim_100pps_1hour(self):
        """§3.4: a 100 pps scanner appears within 1 h with ~99.9% probability."""
        p = detection_probability(100, 3600)
        assert p > 0.99

    def test_time_to_detection_inverse(self):
        t = time_to_detection(100, confidence=0.999)
        assert detection_probability(100, t) == pytest.approx(0.999, rel=1e-6)

    def test_faster_scanner_detected_sooner(self):
        assert time_to_detection(1000) < time_to_detection(100)

    def test_confidence_must_be_fraction(self):
        with pytest.raises(ValueError):
            time_to_detection(100, confidence=1.0)

    def test_internet_wide_rate(self):
        # 1 telescope pps extrapolates by the inverse space fraction.
        rate = internet_wide_rate(1.0, telescope_size=2**16)
        assert rate == pytest.approx(2**16)

    def test_coverage_estimate_full(self):
        assert coverage_estimate(PAPER_TELESCOPE_SIZE) == 1.0

    def test_coverage_estimate_partial(self):
        assert coverage_estimate(PAPER_TELESCOPE_SIZE // 2) == pytest.approx(0.5, rel=1e-4)

    def test_coverage_estimate_negative_rejected(self):
        with pytest.raises(ValueError):
            coverage_estimate(-1)
