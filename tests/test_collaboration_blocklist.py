"""Tests for collaborative-scan reconstruction and blocklist analyses."""

import numpy as np
import pytest

from repro.core.blocklist import (
    blocklist_effectiveness,
    institutional_filter_effectiveness,
)
from repro.core.campaigns import ScanTable
from repro.core.collaboration import (
    evaluate_merging,
    merge_collaborative_scans,
    single_source_bias,
)
from repro.scanners import Tool


def scan_table(rows):
    """rows: (src_ip, start, end, tool, ports)."""
    n = len(rows)
    return ScanTable(
        src_ip=np.array([r[0] for r in rows], dtype=np.uint32),
        start=np.array([r[1] for r in rows], dtype=float),
        end=np.array([r[2] for r in rows], dtype=float),
        packets=np.full(n, 200, dtype=np.int64),
        distinct_dsts=np.full(n, 150, dtype=np.int64),
        port_sets=[np.array(sorted(r[4]), dtype=np.int64) for r in rows],
        primary_port=np.array([sorted(r[4])[0] for r in rows], dtype=np.uint16),
        tool=np.array([r[3] for r in rows], dtype=object),
        match_fraction=np.ones(n),
        speed_pps=np.full(n, 500.0),
        coverage=np.full(n, 0.004),
    )


BASE = 0x0A000000  # 10.0.0.0


class TestMerging:
    def test_shards_merge(self):
        rows = [(BASE + i, 100.0, 5000.0, Tool.ZMAP, [443]) for i in range(8)]
        merged = merge_collaborative_scans(scan_table(rows))
        assert len(merged) == 1
        assert merged[0].is_collaborative
        assert len(merged[0].sources) == 8
        assert merged[0].total_coverage == pytest.approx(0.032)

    def test_different_subnets_stay_separate(self):
        rows = [(BASE, 100.0, 5000.0, Tool.ZMAP, [443]),
                (BASE + 65536, 100.0, 5000.0, Tool.ZMAP, [443])]
        merged = merge_collaborative_scans(scan_table(rows))
        assert len(merged) == 2

    def test_different_tools_stay_separate(self):
        rows = [(BASE, 100.0, 5000.0, Tool.ZMAP, [443]),
                (BASE + 1, 100.0, 5000.0, Tool.MASSCAN, [443])]
        assert len(merge_collaborative_scans(scan_table(rows))) == 2
        assert len(merge_collaborative_scans(scan_table(rows),
                                             same_tool=False)) == 1

    def test_different_ports_stay_separate(self):
        rows = [(BASE, 100.0, 5000.0, Tool.ZMAP, [443]),
                (BASE + 1, 100.0, 5000.0, Tool.ZMAP, [80])]
        assert len(merge_collaborative_scans(scan_table(rows))) == 2

    def test_time_gap_splits(self):
        rows = [(BASE, 0.0, 1000.0, Tool.ZMAP, [443]),
                (BASE + 1, 10 * 86400.0, 10 * 86400.0 + 1000.0, Tool.ZMAP, [443])]
        assert len(merge_collaborative_scans(scan_table(rows))) == 2

    def test_transitive_merge(self):
        # A overlaps B, B overlaps C, A does not overlap C — still one
        # campaign via the sweep.
        rows = [(BASE, 0.0, 1000.0, Tool.ZMAP, [443]),
                (BASE + 1, 900.0, 2000.0, Tool.ZMAP, [443]),
                (BASE + 2, 1900.0, 3000.0, Tool.ZMAP, [443])]
        merged = merge_collaborative_scans(scan_table(rows), max_gap_s=0.0)
        assert len(merged) == 1

    def test_empty(self):
        assert merge_collaborative_scans(ScanTable.empty()) == []

    def test_gap_validation(self):
        with pytest.raises(ValueError):
            merge_collaborative_scans(ScanTable.empty(), max_gap_s=-1)

    def test_large_port_set_signature(self):
        big = list(range(1, 20_000))
        rows = [(BASE, 0.0, 1000.0, Tool.ZMAP, big),
                (BASE + 1, 0.0, 1000.0, Tool.ZMAP, big)]
        merged = merge_collaborative_scans(scan_table(rows))
        assert len(merged) == 1


class TestBias:
    def test_bias_report(self):
        rows = [(BASE + i, 100.0, 5000.0, Tool.ZMAP, [443]) for i in range(4)]
        rows.append((BASE + 65536, 100.0, 5000.0, Tool.MASSCAN, [80]))
        report = single_source_bias(scan_table(rows))
        assert report.observed_scans == 5
        assert report.logical_campaigns == 2
        assert report.collaborative_campaigns == 1
        assert report.inflation_factor == pytest.approx(2.5)
        assert report.mean_sources_per_collaboration == pytest.approx(4.0)

    def test_bias_on_simulation(self, sim2020, analysis2020):
        """The reconstruction must recover a meaningful share of the
        simulator's sharded campaigns and report inflation > 1."""
        merged = merge_collaborative_scans(analysis2020.study_scans)
        report = single_source_bias(analysis2020.study_scans, merged)
        assert report.inflation_factor >= 1.0
        truth = {}
        for spec in sim2020.campaigns:
            for ip in spec.src_ips:
                truth[ip] = spec.campaign_id
        evaluation = evaluate_merging(analysis2020.study_scans, merged, truth)
        assert evaluation.pair_precision > 0.75
        assert evaluation.pair_recall > 0.5


class TestEvaluate:
    def test_perfect_merge_scores_one(self):
        rows = [(BASE + i, 100.0, 5000.0, Tool.ZMAP, [443]) for i in range(3)]
        table = scan_table(rows)
        merged = merge_collaborative_scans(table)
        truth = {BASE + i: 1 for i in range(3)}
        evaluation = evaluate_merging(table, merged, truth)
        assert evaluation.pair_precision == 1.0
        assert evaluation.pair_recall == 1.0

    def test_overmerge_hurts_precision(self):
        rows = [(BASE, 100.0, 5000.0, Tool.ZMAP, [443]),
                (BASE + 1, 100.0, 5000.0, Tool.ZMAP, [443])]
        table = scan_table(rows)
        merged = merge_collaborative_scans(table)
        truth = {BASE: 1, BASE + 1: 2}  # actually different campaigns
        evaluation = evaluate_merging(table, merged, truth)
        assert evaluation.pair_precision == 0.0


class TestBlocklist:
    def test_general_blocklist_goes_stale(self, analysis2020):
        """§6.6: a list of last week's scanners blocks little of this week."""
        results = blocklist_effectiveness(analysis2020.study_batch,
                                          build_days=3.0)
        assert results
        mean_hit = np.mean([r.source_hit_rate for r in results])
        assert mean_hit < 0.35

    def test_institutional_filter_keeps_working(self, analysis2020):
        inst = institutional_filter_effectiveness(analysis2020, build_days=3.0)
        assert inst.list_size > 0
        general = blocklist_effectiveness(analysis2020.study_batch,
                                          build_days=3.0)
        mean_general_sources = np.mean([r.list_size for r in general])
        # Tiny list, outsized effect: far fewer entries than a general list,
        # yet a material share of traffic.
        assert inst.list_size < 0.05 * mean_general_sources
        assert inst.packet_hit_rate > 0.03

    def test_window_validation(self, analysis2020):
        with pytest.raises(ValueError):
            blocklist_effectiveness(analysis2020.study_batch, build_days=0)
        with pytest.raises(ValueError):
            blocklist_effectiveness(analysis2020.study_batch, lag_days=-1)

    def test_empty_batch(self):
        from repro.telescope.packet import PacketBatch
        assert blocklist_effectiveness(PacketBatch.empty()) == []

    def test_lag_reduces_hit_rate(self, analysis2020):
        """Distribution delay makes the list even staler."""
        fresh = blocklist_effectiveness(analysis2020.study_batch,
                                        build_days=2.0, lag_days=0.0)
        stale = blocklist_effectiveness(analysis2020.study_batch,
                                        build_days=2.0, lag_days=2.0)
        if fresh and stale:
            assert (np.mean([r.source_hit_rate for r in stale])
                    <= np.mean([r.source_hit_rate for r in fresh]) + 0.05)
