"""Tests for the scenario builders (and that the pipeline behaves as each
scenario intends)."""

import numpy as np
import pytest

from repro.core import analyze_simulation, summarize_period
from repro.enrichment.types import ScannerType
from repro.scanners import Tool
from repro.simulation import TelescopeWorld
from repro.simulation.scenarios import (
    make_cohort,
    scenario_disclosure_storm,
    scenario_institutional_sky,
    scenario_sharded_sweep,
    scenario_single_botnet,
)


class TestMakeCohort:
    def test_defaults(self):
        cohort = make_cohort("x", ScannerType.HOSTING, Tool.MASSCAN,
                             port_weights={80: 1.0})
        assert cohort.tool_weights == {Tool.MASSCAN: 1.0}
        assert cohort.scan_share == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            make_cohort("x", ScannerType.HOSTING, Tool.MASSCAN,
                        port_weights={80: 1.0}, median_pps=0)
        with pytest.raises(ValueError):
            make_cohort("x", ScannerType.HOSTING, Tool.MASSCAN,
                        port_weights={80: 1.0}, scan_share=1.5)


class TestSingleBotnet:
    def test_config_shape(self):
        cfg = scenario_single_botnet(port=23, alt_port=2323)
        assert len(cfg.cohorts) == 2
        assert cfg.cohorts[0].tool_weights == {Tool.MIRAI: 1.0}
        assert not cfg.events

    def test_world_is_mirai_dominated(self, world):
        cfg = scenario_single_botnet(days=7, packets_per_day=30e6,
                                     scans_per_month=120e3)
        sim = world.simulate_year(0, config=cfg, max_packets=80_000,
                                  min_scans=200)
        analysis = analyze_simulation(sim)
        shares = summarize_period(analysis).tool_shares_by_scans
        # Mirai dominates; the 2017 ingress block swallows its port-23
        # probes, so only the 2323 half of its campaigns stays detectable.
        assert shares.get(Tool.MIRAI, 0) > 0.5
        assert shares.get(Tool.MIRAI, 0) == max(shares.values())
        # Note: the scenario keeps port 23 pre-2017 semantics only if the
        # year label predates the ingress block; 2017 blocks 23, leaving
        # the 2323 alternative (as with real Mirai measurements).
        ports = set(np.unique(analysis.study_batch.dst_port).tolist())
        assert 2323 in ports

    def test_mirai_fingerprint_dominates_packets(self, world):
        cfg = scenario_single_botnet(days=7, packets_per_day=30e6,
                                     scans_per_month=120e3)
        sim = world.simulate_year(0, config=cfg, max_packets=80_000,
                                  min_scans=200)
        mirai_frac = np.mean(sim.batch.seq == sim.batch.dst_ip)
        assert mirai_frac > 0.6


class TestInstitutionalSky:
    def test_institutional_majority_of_packets(self, world):
        cfg = scenario_institutional_sky(days=7)
        sim = world.simulate_year(0, config=cfg, max_packets=120_000,
                                  min_scans=250)
        analysis = analyze_simulation(sim)
        from repro.core import type_shares
        rows = {r.scanner_type: r for r in type_shares(analysis)}
        assert rows[ScannerType.INSTITUTIONAL].packets > 0.5


class TestDisclosureStorm:
    def test_events_installed(self):
        cfg = scenario_disclosure_storm()
        assert len(cfg.events) == 3
        assert all(e.magnitude == 60.0 for e in cfg.events)

    def test_event_bounds_validated(self):
        with pytest.raises(ValueError):
            scenario_disclosure_storm(events=(("x", 80, 99),), days=21)
        with pytest.raises(ValueError):
            scenario_disclosure_storm(events=())

    def test_all_storm_ports_spike(self, world):
        from repro.core.events import event_response
        cfg = scenario_disclosure_storm(days=14, events=(
            ("a", 9200, 2), ("b", 6443, 6),
        ))
        sim = world.simulate_year(0, config=cfg, max_packets=150_000,
                                  min_scans=400)
        analysis = analyze_simulation(sim)
        for event in cfg.events:
            response = event_response(analysis, event.port, event.day_offset)
            assert response.peak_factor > 3.0, event.name


class TestShardedSweep:
    def test_counting_bias_is_large(self, world):
        from repro.core import merge_collaborative_scans, single_source_bias
        cfg = scenario_sharded_sweep(shards_mean=12.0, days=7)
        sim = world.simulate_year(0, config=cfg, max_packets=150_000,
                                  min_scans=400)
        analysis = analyze_simulation(sim)
        report = single_source_bias(analysis.study_scans)
        assert report.inflation_factor > 2.0
        assert report.collaborative_campaigns > 5

    def test_truth_is_sharded(self, world):
        cfg = scenario_sharded_sweep(shards_mean=12.0, days=7)
        sim = world.simulate_year(0, config=cfg, max_packets=100_000,
                                  min_scans=300)
        sharded = [c for c in sim.campaigns if c.shards > 1]
        assert len(sharded) > 10
        assert np.mean([c.shards for c in sharded]) > 5
