"""Thread-pressure tests for the serve layer (ISSUE 10, satellite 3).

N threads hammer JobQueue and ScenarioStore with mixed operations while
an invariant checker reads consistent snapshots concurrently; every test
runs under a watchdog join so a deadlock fails fast instead of hanging
the suite.  The invariants asserted here are the ones the concurrency
lint pass (RPR015-019) exists to protect: counters consistent with job
records, no lost scenario updates, snapshot reads never observing a
half-applied transition.
"""

import threading
import time
from pathlib import Path

import pytest

from repro.serve.jobs import JobSpec
from repro.serve.queue import JobQueue
from repro.serve.scenario import ScenarioStore

SPEC = dict(year=2016, days=3, max_packets=6_000, min_scans=40)

#: Watchdog for every join: generous for CI, instant death on deadlock
#: compared to a suite-level timeout.
WATCHDOG_S = 60.0


def _task_ok(payload):
    return {"kind": "ok", "spec": payload["spec"]}


def run_threads(workers, errors, timeout=WATCHDOG_S):
    """Start, then join under a shared watchdog; assert nothing hung."""
    threads = [threading.Thread(target=w, daemon=True) for w in workers]
    for thread in threads:
        thread.start()
    deadline = time.monotonic() + timeout
    for thread in threads:
        thread.join(max(0.0, deadline - time.monotonic()))
    alive = [t.name for t in threads if t.is_alive()]
    assert not alive, f"deadlock suspected; threads still running: {alive}"
    assert errors == [], errors


def catching(fn, errors):
    def runner():
        try:
            fn()
        except Exception as exc:  # noqa: BLE001 — surfaced via run_threads
            errors.append(repr(exc))
    return runner


class TestJobQueuePressure:
    N_THREADS = 6
    OPS = 12

    def _specs(self):
        return [
            JobSpec(kind=kind, seed=seed, **SPEC)
            for kind in ("simulate", "analyze")
            for seed in (5, 6)
        ]

    def test_mixed_submit_cancel_stats_keeps_counters_consistent(
        self, tmp_path
    ):
        errors = []
        submit_tallies = [0] * self.N_THREADS
        specs = self._specs()
        with JobQueue(tmp_path / "cache", workers=1, task=_task_ok) as queue:
            keys = {queue.job_key(spec) for spec in specs}

            def worker(idx):
                def run():
                    for op in range(self.OPS):
                        spec = specs[(idx + op) % len(specs)]
                        choice = (idx * 7 + op) % 4
                        if choice in (0, 1):
                            rec = queue.submit(spec)
                            submit_tallies[idx] += 1
                            assert rec.job_id in keys
                        elif choice == 2:
                            queue.cancel(queue.job_key(spec))
                        else:
                            doc = queue.stats()
                            counts = doc["jobs"]
                            assert counts["total"] == sum(
                                counts[s] for s in
                                ("queued", "running", "done", "failed",
                                 "cancelled")
                            )
                            counters = doc["counters"]
                            assert counters["completed"] <= counters["executed"]
                            for value in counters.values():
                                assert value >= 0
                return run

            run_threads(
                [catching(worker(i), errors) for i in range(self.N_THREADS)],
                errors,
            )

            # Quiesce: cancelled records are terminal, live ones finish.
            for doc in queue.snapshots():
                queue.wait(doc["job_id"], timeout=WATCHDOG_S)

            stats = queue.stats()
            counters = stats["counters"]
            assert counters["submissions"] == sum(submit_tallies)
            assert stats["jobs"]["total"] == len(keys)
            # Every start is accounted for: a submission either coalesced
            # (dedup hit) or started an attempt, and the only other
            # attempt source is the broken-pool retry path.
            assert counters["executed"] == (
                counters["submissions"] - counters["dedup_hits"]
                + counters["retries"]
            )
            assert counters["completed"] == stats["jobs"]["done"]
            assert counters["failures"] == stats["jobs"]["failed"]
            assert stats["jobs"]["queued"] == 0
            assert stats["jobs"]["running"] == 0

    def test_snapshots_never_observe_half_applied_transitions(self, tmp_path):
        errors = []
        stop = threading.Event()
        with JobQueue(tmp_path / "cache", workers=1, task=_task_ok) as queue:
            spec = JobSpec(kind="simulate", seed=5, **SPEC)

            def submitter():
                for _ in range(8):
                    queue.submit(spec)
                    time.sleep(0.005)
                stop.set()

            def checker():
                while not stop.is_set():
                    for doc in queue.snapshots(with_result=True):
                        # A consistent cut: a done job always carries its
                        # result, a queued/running one never does.
                        if doc["status"] == "done":
                            assert doc["result"] is not None
                        if doc["status"] in ("queued", "running"):
                            assert doc["result"] is None
                            assert doc["error"] is None

            run_threads(
                [catching(submitter, errors), catching(checker, errors)],
                errors,
            )

    def test_close_during_traffic_is_deadlock_free(self, tmp_path):
        errors = []
        queue = JobQueue(tmp_path / "cache", workers=1, task=_task_ok)
        specs = self._specs()

        def worker(idx):
            def run():
                for op in range(self.OPS):
                    try:
                        queue.submit(specs[(idx + op) % len(specs)])
                    except RuntimeError as exc:
                        # The one legal failure once close() lands.
                        assert "closed" in str(exc)
                        return
                    queue.stats()
            return run

        def closer():
            time.sleep(0.02)
            queue.close(wait=True)

        run_threads(
            [catching(worker(i), errors) for i in range(4)]
            + [catching(closer, errors)],
            errors,
        )


class TestScenarioStorePressure:
    N_THREADS = 6
    OPS = 25
    TENANTS = ("alpha", "beta")
    NAMES = ("s0", "s1", "s2")

    def test_mixed_crud_keeps_store_consistent(self, tmp_path):
        errors = []
        store = ScenarioStore(tmp_path)
        spec_a = JobSpec(kind="stream-report", seed=5, **SPEC)
        spec_b = JobSpec(kind="stream-report", seed=6, **SPEC)

        def worker(idx):
            def run():
                for op in range(self.OPS):
                    tenant = self.TENANTS[(idx + op) % len(self.TENANTS)]
                    name = self.NAMES[op % len(self.NAMES)]
                    choice = (idx * 5 + op) % 5
                    if choice in (0, 1):
                        scenario = store.put(
                            tenant, name, spec_a if choice == 0 else spec_b
                        )
                        assert scenario.revision >= 1
                    elif choice == 2:
                        store.delete(tenant, name)
                    elif choice == 3:
                        scenario = store.get(tenant, name)
                        if scenario is not None:
                            assert scenario.tenant == tenant
                            assert scenario.name == name
                    else:
                        # Consistent cut: per-tenant listings sum to the
                        # global count taken in between, within the ops
                        # still in flight.
                        listed = store.list(tenant)
                        assert all(s.tenant == tenant for s in listed)
                        assert store.count() >= 0
            return run

        run_threads(
            [catching(worker(i), errors) for i in range(self.N_THREADS)],
            errors,
        )

        # Quiesced invariants: listings, count and tenant set agree, and
        # every listed scenario is retrievable (no lost updates).
        total = sum(len(store.list(t)) for t in self.TENANTS)
        assert store.count() == total
        assert set(store.tenants()) <= set(self.TENANTS)
        live = {}
        for tenant in self.TENANTS:
            for scenario in store.list(tenant):
                assert store.get(tenant, scenario.name) is scenario
                live[(tenant, scenario.name)] = scenario.revision

        # Persistence kept pace under the lock: a reopened store sees
        # exactly the surviving scenarios at their final revisions.
        reopened = ScenarioStore(tmp_path)
        restored = {
            (s.tenant, s.name): s.revision
            for t in self.TENANTS
            for s in reopened.list(t)
        }
        assert restored == live

    def test_cache_derived_races_with_put_safely(self, tmp_path):
        errors = []
        store = ScenarioStore(tmp_path)
        spec = JobSpec(kind="stream-report", seed=5, **SPEC)
        store.put("alpha", "s0", spec)
        stop = threading.Event()

        def deriver():
            for i in range(40):
                scenario = store.get("alpha", "s0")
                if scenario is not None:
                    store.cache_derived(scenario, {"report": i})
            stop.set()

        def putter():
            flip = [
                JobSpec(kind="stream-report", seed=5, **SPEC),
                JobSpec(kind="stream-report", seed=6, **SPEC),
            ]
            i = 0
            while not stop.is_set():
                store.put("alpha", "s0", flip[i % 2])
                i += 1

        run_threads(
            [catching(deriver, errors), catching(putter, errors)], errors
        )
        scenario = store.get("alpha", "s0")
        assert scenario is not None
        # A cached derivation, if present, matches the spec revision it
        # was computed against or has been dropped by the spec change.
        payload = scenario.cached_payload()
        if payload is not None:
            assert "report" in payload
