"""Targeted tests for TelescopeWorld internals: weekly prefix weighting,
recurrence pools, institutional port priority, and budget bookkeeping."""

import numpy as np
import pytest

from repro.enrichment.types import ScannerType
from repro.simulation import TelescopeWorld, year_config
from repro.simulation.world import _COMMON_PORTS_FIRST


@pytest.fixture()
def fresh_world(telescope, registry):
    return TelescopeWorld(telescope=telescope, registry=registry, rng=13)


class TestWeeklyWeights:
    def test_deterministic_per_year_week(self, fresh_world, telescope, registry):
        a = fresh_world._weekly_weights(2020, 2)
        other = TelescopeWorld(telescope=telescope, registry=registry, rng=99)
        b = other._weekly_weights(2020, 2)
        assert np.array_equal(a, b)

    def test_varies_across_weeks(self, fresh_world):
        a = fresh_world._weekly_weights(2020, 0)
        b = fresh_world._weekly_weights(2020, 1)
        assert not np.array_equal(a, b)

    def test_varies_across_years(self, fresh_world):
        a = fresh_world._weekly_weights(2019, 0)
        b = fresh_world._weekly_weights(2020, 0)
        assert not np.array_equal(a, b)

    def test_substantial_swings(self, fresh_world):
        """The weights must produce the factor-2+ weekly changes Fig 2
        rests on."""
        a = fresh_world._weekly_weights(2020, 0)
        b = fresh_world._weekly_weights(2020, 1)
        ratio = a / b
        assert np.mean((ratio > 2) | (ratio < 0.5)) > 0.3

    def test_cached(self, fresh_world):
        a = fresh_world._weekly_weights(2020, 3)
        b = fresh_world._weekly_weights(2020, 3)
        assert a is b


class TestPortPriority:
    def test_common_ports_come_first(self):
        priority = TelescopeWorld._port_priority(30)
        assert tuple(priority[:len(_COMMON_PORTS_FIRST)]) == _COMMON_PORTS_FIRST

    def test_covers_requested_count(self):
        priority = TelescopeWorld._port_priority(50_000)
        assert priority.size == 50_000
        assert np.unique(priority).size == 50_000

    def test_full_range(self):
        priority = TelescopeWorld._port_priority(65_535)
        assert np.unique(priority).size == 65_535


class TestPrefixCache:
    def test_fallback_when_country_missing(self, fresh_world):
        from repro.enrichment.types import AllocationType
        # "XX" has no prefixes: falls back to the type-wide pool.
        indices = fresh_world._prefixes("XX", AllocationType.HOSTING)
        assert indices
        records = [fresh_world.registry.records[i] for i in indices]
        assert all(r.alloc_type == AllocationType.HOSTING for r in records)

    def test_cache_hit(self, fresh_world):
        from repro.enrichment.types import AllocationType
        a = fresh_world._prefixes("NL", AllocationType.HOSTING)
        b = fresh_world._prefixes("NL", AllocationType.HOSTING)
        assert a is b


class TestBudgets:
    def test_packet_budget_split(self, fresh_world):
        """Background + institutional + cohorts + backscatter add up."""
        sim = fresh_world.simulate_year(2020, days=6, max_packets=60_000,
                                        min_scans=200)
        total = len(sim.batch)
        campaign_packets = 0
        campaign_sources = {ip for c in sim.campaigns for ip in c.src_ips}
        mask = np.isin(sim.batch.src_ip,
                       np.array(sorted(campaign_sources), dtype=np.uint32))
        campaign_packets = int(mask.sum())
        background_packets = total - campaign_packets
        # Background is calibrated to ~10% of traffic.
        assert 0.04 < background_packets / total < 0.25

    def test_recurrence_pool_produces_repeat_sources(self, fresh_world):
        sim = fresh_world.simulate_year(2020, days=6, max_packets=60_000,
                                        min_scans=300)
        from collections import Counter
        counts = Counter()
        for c in sim.campaigns:
            if not c.organisation:
                for ip in c.src_ips:
                    counts[ip] += 1
        repeats = sum(1 for v in counts.values() if v >= 2)
        assert repeats > 3  # hosting recurrence probability is 15%

    def test_event_campaigns_concentrate_after_disclosure(self, fresh_world):
        cfg = year_config(2020, days=14)
        sim = fresh_world.simulate_year(0, config=cfg, max_packets=80_000,
                                        min_scans=300)
        event = cfg.events[0]
        event_scans = [c for c in sim.campaigns if c.ports == (event.port,)]
        assert event_scans
        starts = np.array([c.start for c in event_scans]) / 86_400.0
        after = starts[starts >= event.day_offset - 0.01]
        # The surge sits after the disclosure and decays within days.
        assert after.size > 0.6 * starts.size
        assert np.median(after) < event.day_offset + 4 * event.decay_days
