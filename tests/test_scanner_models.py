"""Unit and property tests for the scanner tool wire-behaviour models.

The critical invariant: every generator satisfies its published fingerprint
relation on all packets, and unrelated generators do not satisfy it beyond
chance rates.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.scanners import (
    CustomToolModel,
    HeaderFields,
    MasscanModel,
    MiraiModel,
    NMapModel,
    STOCK_PORT_MIX,
    TargetOrder,
    Tool,
    UnicornModel,
    ZMAP_IP_ID,
    ZMapModel,
    masscan_ip_id,
    model_for,
    nmap_pair_relation_holds,
    registered_tools,
    unicorn_seq,
)


def targets(n=500, seed=0):
    gen = np.random.default_rng(seed)
    return (gen.integers(0, 2**32, n, dtype=np.uint32),
            gen.integers(1, 2**16, n, dtype=np.uint16))


class TestRegistry:
    def test_all_tools_registered(self):
        assert set(registered_tools()) == {
            Tool.ZMAP, Tool.MASSCAN, Tool.NMAP, Tool.MIRAI, Tool.UNICORN,
            Tool.UNKNOWN,
        }

    def test_model_for_instantiates(self):
        for tool in registered_tools():
            model = model_for(tool, rng=1)
            assert model.tool == tool

    def test_model_for_unknown_key(self):
        with pytest.raises(KeyError):
            model_for("not-a-tool")


class TestHeaderFields:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            HeaderFields(
                src_port=np.zeros(2, dtype=np.uint16),
                ip_id=np.zeros(3, dtype=np.uint16),
                seq=np.zeros(2, dtype=np.uint32),
                ttl=np.zeros(2, dtype=np.uint8),
                window=np.zeros(2, dtype=np.uint16),
            )

    def test_craft_rejects_mismatched_targets(self):
        dip, dpt = targets(10)
        with pytest.raises(ValueError):
            MasscanModel(rng=0).craft(dip, dpt[:5])


class TestZMap:
    def test_stock_ip_id(self):
        dip, dpt = targets()
        fields = ZMapModel(rng=1).craft(dip, dpt)
        assert np.all(fields.ip_id == ZMAP_IP_ID)

    def test_defingerprinted_ip_id_random(self):
        dip, dpt = targets()
        fields = ZMapModel(rng=1, fingerprintable=False).craft(dip, dpt)
        assert np.mean(fields.ip_id == ZMAP_IP_ID) < 0.01

    def test_validation_deterministic_per_instance(self):
        dip, dpt = targets(50)
        m = ZMapModel(rng=7)
        a = m.craft(dip, dpt)
        b = m.craft(dip, dpt)
        assert np.array_equal(a.seq, b.seq)

    def test_validation_differs_between_instances(self):
        dip, dpt = targets(50)
        a = ZMapModel(rng=1).craft(dip, dpt)
        b = ZMapModel(rng=2).craft(dip, dpt)
        assert not np.array_equal(a.seq, b.seq)

    def test_shard_bounds(self):
        with pytest.raises(ValueError):
            ZMapModel(rng=0, shard=2, shards=2)
        with pytest.raises(ValueError):
            ZMapModel(rng=0, shards=0)

    def test_permutation_order(self):
        assert ZMapModel.target_order == TargetOrder.RANDOM_PERMUTATION


class TestMasscan:
    def test_ip_id_relation_holds(self):
        dip, dpt = targets()
        fields = MasscanModel(rng=3).craft(dip, dpt)
        assert np.all(fields.ip_id == masscan_ip_id(dip, dpt, fields.seq))

    def test_syn_cookie_depends_on_entropy(self):
        dip, dpt = targets(50)
        a = MasscanModel(rng=1).craft(dip, dpt)
        b = MasscanModel(rng=2).craft(dip, dpt)
        assert not np.array_equal(a.seq, b.seq)

    def test_other_tools_fail_relation(self):
        dip, dpt = targets(2000)
        for model in (ZMapModel(rng=1), MiraiModel(rng=2), CustomToolModel(rng=3)):
            fields = model.craft(dip, dpt)
            fp_rate = np.mean(fields.ip_id == masscan_ip_id(dip, dpt, fields.seq))
            assert fp_rate < 0.01, type(model).__name__


class TestNMap:
    def test_pair_relation_within_session(self):
        dip, dpt = targets(200)
        fields = NMapModel(rng=5).craft(dip, dpt)
        seqs = fields.seq.tolist()
        assert all(nmap_pair_relation_holds(seqs[0], s) for s in seqs[1:])

    def test_relation_fails_across_sessions(self):
        dip, dpt = targets(100)
        a = NMapModel(rng=1).craft(dip, dpt).seq
        b = NMapModel(rng=2).craft(dip, dpt).seq
        matches = sum(nmap_pair_relation_holds(int(x), int(y))
                      for x, y in zip(a[:50], b[:50]))
        assert matches < 5

    def test_secret_exposed_property(self):
        m = NMapModel(rng=4)
        assert 0 <= m.session_secret < 2**32

    def test_sequential_order(self):
        assert NMapModel.target_order == TargetOrder.SEQUENTIAL

    def test_random_pairs_rarely_match(self, rng):
        a = rng.integers(0, 2**32, 5000)
        b = rng.integers(0, 2**32, 5000)
        rate = np.mean([nmap_pair_relation_holds(int(x), int(y))
                        for x, y in zip(a, b)])
        # Chance rate is 2^-16.
        assert rate < 0.001


class TestMirai:
    def test_seq_is_dst_ip(self):
        dip, dpt = targets()
        fields = MiraiModel(rng=1).craft(dip, dpt)
        assert np.array_equal(fields.seq, dip)

    def test_stock_port_mix(self, rng):
        m = MiraiModel(rng=1)
        ports = m.choose_stock_ports(rng, 10_000)
        share_23 = np.mean(ports == 23)
        assert 0.88 < share_23 < 0.92
        assert set(np.unique(ports).tolist()) == {23, 2323}
        assert [p for p, _ in STOCK_PORT_MIX] == [23, 2323]


class TestUnicorn:
    def test_pairwise_relation(self):
        dip, dpt = targets(300)
        fields = UnicornModel(rng=9).craft(dip, dpt)
        left = (fields.seq[:-1].astype(np.uint32) ^ fields.seq[1:].astype(np.uint32))
        right = (
            (dip[:-1].astype(np.uint32) ^ dip[1:].astype(np.uint32))
            ^ (fields.src_port[:-1].astype(np.uint32) ^ fields.src_port[1:].astype(np.uint32))
            ^ ((dpt[:-1].astype(np.uint32) ^ dpt[1:].astype(np.uint32)) << np.uint32(16))
        )
        assert np.array_equal(left, right)

    def test_construction_helper_matches_model(self):
        dip, dpt = targets(50)
        model = UnicornModel(rng=2)
        fields = model.craft(dip, dpt)
        rebuilt = unicorn_seq(dip, dpt, fields.src_port, model._key)
        assert np.array_equal(fields.seq, rebuilt)


class TestCustom:
    def test_ip_id_increments(self):
        dip, dpt = targets(100)
        model = CustomToolModel(rng=0)
        fields = model.craft(dip, dpt)
        deltas = np.diff(fields.ip_id.astype(np.int64)) % (1 << 16)
        assert np.all(deltas == 1)

    def test_counter_persists_across_calls(self):
        dip, dpt = targets(10)
        model = CustomToolModel(rng=0)
        a = model.craft(dip, dpt)
        b = model.craft(dip, dpt)
        assert (int(b.ip_id[0]) - int(a.ip_id[-1])) % (1 << 16) == 1

    def test_sequential_flag(self):
        assert CustomToolModel(rng=0, sequential=True).target_order == TargetOrder.SEQUENTIAL
        assert CustomToolModel(rng=0).target_order == TargetOrder.RANDOM_PERMUTATION


class TestFieldRanges:
    @pytest.mark.parametrize("tool", list(Tool))
    def test_all_fields_in_range(self, tool):
        dip, dpt = targets(300, seed=42)
        fields = model_for(tool, rng=1).craft(dip, dpt)
        assert fields.src_port.dtype == np.uint16
        assert fields.ip_id.dtype == np.uint16
        assert fields.seq.dtype == np.uint32
        assert np.all(fields.ttl >= 1)
        assert fields.count == 300

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_craft_length_property(self, n):
        dip, dpt = targets(n, seed=n)
        fields = MasscanModel(rng=0).craft(dip, dpt)
        assert fields.count == n
        assert np.all(fields.ip_id == masscan_ip_id(dip, dpt, fields.seq))
