"""Tests for pcap interoperability."""

import struct

import numpy as np
import pytest

from repro.telescope.packet import FLAG_ACK, FLAG_SYN, PacketBatch, SynPacket
from repro.telescope.pcap import (
    PCAP_MAGIC_LE,
    PcapFormatError,
    _build_frame,
    _ipv4_checksum,
    iter_pcap,
    read_pcap,
    write_pcap,
)


def sample_batch(n=50):
    gen = np.random.default_rng(3)
    packets = [
        SynPacket(
            time=float(i) + 0.25,
            src_ip=int(gen.integers(0, 2**32)),
            dst_ip=int(gen.integers(0, 2**32)),
            src_port=int(gen.integers(1, 2**16)),
            dst_port=int(gen.integers(1, 2**16)),
            ip_id=int(gen.integers(0, 2**16)),
            seq=int(gen.integers(0, 2**32)),
            ttl=int(gen.integers(1, 255)),
            window=int(gen.integers(0, 2**16)),
            flags=FLAG_SYN,
        )
        for i in range(n)
    ]
    return PacketBatch.from_packets(packets)


class TestChecksum:
    def test_known_vector(self):
        # Classic example header from RFC 1071 discussions.
        header = bytes.fromhex(
            "4500003c1c4640004006" + "0000" + "ac100a63ac100a0c"
        )
        checksum = _ipv4_checksum(header)
        # Verify by re-summing with the checksum in place: must fold to 0.
        patched = header[:10] + struct.pack("!H", checksum) + header[12:]
        assert _ipv4_checksum(patched) == 0

    def test_frame_checksum_valid(self):
        packet = SynPacket(time=0, src_ip=0x01020304, dst_ip=0x05060708,
                           src_port=1234, dst_port=80)
        frame = _build_frame(packet)
        ip_header = frame[14:34]
        assert _ipv4_checksum(ip_header) == 0


class TestRoundTrip:
    def test_all_fields_survive(self, tmp_path):
        batch = sample_batch()
        path = tmp_path / "t.pcap"
        assert write_pcap(path, batch) == len(batch)
        loaded = read_pcap(path)
        assert len(loaded) == len(batch)
        for name in ("src_ip", "dst_ip", "src_port", "dst_port",
                     "ip_id", "seq", "ttl", "window", "flags"):
            assert np.array_equal(loaded.columns()[name],
                                  batch.columns()[name]), name

    def test_timestamps_microsecond_resolution(self, tmp_path):
        batch = sample_batch(5)
        path = tmp_path / "t.pcap"
        write_pcap(path, batch)
        loaded = read_pcap(path)
        assert np.allclose(loaded.time, batch.time, atol=2e-6)

    def test_flags_preserved(self, tmp_path):
        packets = [
            SynPacket(time=0.0, src_ip=1, dst_ip=2, src_port=3, dst_port=4,
                      flags=FLAG_SYN),
            SynPacket(time=1.0, src_ip=1, dst_ip=2, src_port=3, dst_port=4,
                      flags=FLAG_SYN | FLAG_ACK),
        ]
        path = tmp_path / "f.pcap"
        write_pcap(path, PacketBatch.from_packets(packets))
        loaded = read_pcap(path)
        assert loaded.flags.tolist() == [FLAG_SYN, FLAG_SYN | FLAG_ACK]

    def test_empty(self, tmp_path):
        path = tmp_path / "e.pcap"
        write_pcap(path, PacketBatch.empty())
        assert len(read_pcap(path)) == 0

    def test_frame_size_is_54_bytes(self):
        packet = SynPacket(time=0, src_ip=1, dst_ip=2, src_port=3, dst_port=4)
        assert len(_build_frame(packet)) == 54


class TestRobustness:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\x00" * 24)
        with pytest.raises(PcapFormatError):
            list(iter_pcap(path))

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.pcap"
        path.write_bytes(b"\xd4\xc3\xb2\xa1")
        with pytest.raises(PcapFormatError):
            list(iter_pcap(path))

    def test_truncated_frame(self, tmp_path):
        good = tmp_path / "good.pcap"
        write_pcap(good, sample_batch(3))
        data = good.read_bytes()
        bad = tmp_path / "bad.pcap"
        bad.write_bytes(data[:-10])
        with pytest.raises(PcapFormatError):
            list(iter_pcap(bad))

    def test_non_tcp_frames_skipped(self, tmp_path):
        good = tmp_path / "good.pcap"
        write_pcap(good, sample_batch(2))
        data = bytearray(good.read_bytes())
        # Corrupt the first frame's ethertype to ARP: it must be skipped.
        first_frame_offset = 24 + 16
        data[first_frame_offset + 12:first_frame_offset + 14] = b"\x08\x06"
        mixed = tmp_path / "mixed.pcap"
        mixed.write_bytes(bytes(data))
        assert len(read_pcap(mixed)) == 1

    def test_big_endian_pcap_accepted(self, tmp_path):
        """A byte-swapped global header (written on a BE machine) parses."""
        good = tmp_path / "good.pcap"
        write_pcap(good, sample_batch(2))
        data = bytearray(good.read_bytes())
        # Re-write the global header and record headers big-endian.
        magic, major, minor, tz, sig, snap, link = struct.unpack(
            "<IHHiIII", bytes(data[:24]))
        data[:24] = struct.pack(">IHHiIII", PCAP_MAGIC_LE, major, minor,
                                tz, sig, snap, link)
        offset = 24
        while offset < len(data):
            sec, usec, caplen, origlen = struct.unpack(
                "<IIII", bytes(data[offset:offset + 16]))
            data[offset:offset + 16] = struct.pack(
                ">IIII", sec, usec, caplen, origlen)
            offset += 16 + caplen
        swapped = tmp_path / "be.pcap"
        swapped.write_bytes(bytes(data))
        assert len(read_pcap(swapped)) == 2


class TestPipelineInterop:
    def test_pcap_capture_analysable(self, tmp_path, sim2020):
        """A pcap round trip must not perturb the analysis pipeline."""
        from repro.core import analyze_period
        from repro.enrichment import ScannerClassifier

        subset = sim2020.batch[0:20_000]
        path = tmp_path / "capture.pcap"
        write_pcap(path, subset)
        loaded = read_pcap(path)
        classifier = ScannerClassifier(sim2020.registry)
        a = analyze_period(subset, year=2020, days=10, classifier=classifier)
        b = analyze_period(loaded, year=2020, days=10, classifier=classifier)
        assert len(a.scans) == len(b.scans)
        assert np.array_equal(a.scans.src_ip, b.scans.src_ip)
