"""Unit and property tests for port-selection models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simulation.ports import (
    ALIAS_GROUPS,
    PortSelector,
    PortsPerScanModel,
    alias_ports_of,
)


class TestAliasGroups:
    def test_known_aliases(self):
        assert 8080 in alias_ports_of(80)
        assert 2323 in alias_ports_of(23)
        assert 8443 in alias_ports_of(443)
        assert 2222 in alias_ports_of(22)

    def test_unknown_port_empty(self):
        assert alias_ports_of(12345) == ()

    def test_groups_are_valid_ports(self):
        for primary, aliases in ALIAS_GROUPS.items():
            assert 0 < primary < 65536
            assert all(0 < a < 65536 for a in aliases)


class TestPortsPerScanModel:
    def make(self, p1=0.8, p2=0.15, p3=0.04, p4=0.009, p5=0.001):
        return PortsPerScanModel(p1, p2, p3, p4, p5)

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            PortsPerScanModel(0.5, 0.1, 0.1, 0.1, 0.1)

    def test_sample_ranges(self, rng):
        model = self.make()
        counts = model.sample_counts(rng, 20_000)
        assert counts.min() >= 1
        assert counts.max() <= 65536

    def test_single_port_fraction_matches(self, rng):
        model = self.make(p1=0.83, p2=0.1498, p3=0.0195, p4=0.0006, p5=0.0001)
        counts = model.sample_counts(rng, 50_000)
        assert abs(np.mean(counts == 1) - 0.83) < 0.01

    def test_class_boundaries(self, rng):
        model = PortsPerScanModel(0.0, 1.0, 0.0, 0.0, 0.0)
        counts = model.sample_counts(rng, 1000)
        assert counts.min() >= 2 and counts.max() <= 4

    def test_vertical_class(self, rng):
        model = PortsPerScanModel(0.0, 0.0, 0.0, 0.0, 1.0)
        counts = model.sample_counts(rng, 100)
        assert counts.min() > 10_000

    @given(st.integers(min_value=1, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_sample_size_property(self, n):
        model = self.make()
        counts = model.sample_counts(np.random.default_rng(n), n)
        assert counts.size == n


class TestPortSelector:
    def make(self, **kwargs):
        defaults = dict(
            port_weights={80: 10.0, 22: 5.0, 443: 3.0},
            tail_fraction=0.1,
            alias_adoption=0.5,
            rng=7,
        )
        defaults.update(kwargs)
        return PortSelector(**defaults)

    def test_requires_weights_or_tail(self):
        with pytest.raises(ValueError):
            PortSelector({}, tail_fraction=0.0)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            PortSelector({80: -1.0})

    def test_primary_distribution(self):
        selector = self.make(tail_fraction=0.0)
        draws = selector.sample_primary(30_000)
        share_80 = np.mean(draws == 80)
        assert abs(share_80 - 10 / 18) < 0.02

    def test_tail_fraction(self):
        selector = self.make(tail_fraction=0.5)
        draws = selector.sample_primary(20_000)
        named = np.isin(draws, [80, 22, 443])
        # The tail occasionally lands on named ports too, so "not named"
        # slightly undercounts the tail.
        assert 0.40 < np.mean(~named) < 0.55

    def test_tail_range_respected(self):
        selector = self.make(tail_fraction=1.0, tail_port_range=(1000, 2000))
        draws = selector.sample_primary(5000)
        assert draws.min() >= 1000 and draws.max() <= 2000

    def test_tail_range_validation(self):
        with pytest.raises(ValueError):
            self.make(tail_port_range=(2000, 1000))

    def test_port_set_single(self):
        selector = self.make()
        assert selector.sample_port_set(80, 1).tolist() == [80]

    def test_port_set_contains_primary(self):
        selector = self.make()
        for count in (2, 5, 20, 500):
            ports = selector.sample_port_set(80, count)
            assert 80 in ports
            assert ports.size <= count

    def test_port_set_distinct_sorted(self):
        selector = self.make()
        ports = selector.sample_port_set(80, 50)
        assert np.unique(ports).size == ports.size
        assert np.all(np.diff(ports) > 0)

    def test_alias_adoption_full(self):
        selector = self.make(alias_adoption=1.0)
        hits = 0
        for _ in range(100):
            ports = selector.sample_port_set(80, 3)
            if 8080 in ports:
                hits += 1
        assert hits == 100

    def test_alias_adoption_zero(self):
        selector = self.make(alias_adoption=0.0)
        hits = sum(8080 in selector.sample_port_set(80, 2) for _ in range(200))
        # 8080 can still appear by random draw, but rarely (not in weights).
        assert hits < 20

    def test_vertical_port_set_contiguous_window(self):
        selector = self.make()
        ports = selector.sample_port_set(80, 20_000)
        assert ports.size >= 19_000
        assert ports.min() >= 1 and ports.max() <= 65535

    def test_count_validation(self):
        with pytest.raises(ValueError):
            self.make().sample_port_set(80, 0)
        with pytest.raises(ValueError):
            self.make().sample_port_set(70000, 2)
