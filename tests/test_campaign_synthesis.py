"""Unit and property tests for campaign specs and telescope-hit synthesis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.enrichment.types import ScannerType
from repro.scanners import Tool
from repro.simulation.campaigns import (
    CampaignSpec,
    bounded_pareto_mean,
    calibrate_pareto_bounds,
    sample_bounded_pareto,
    solve_pareto_low,
    synthesize_campaign,
)
from repro.telescope import FLAG_SYN, Telescope
from repro.telescope.addresses import AddressSet


@pytest.fixture(scope="module")
def scope():
    return Telescope(AddressSet(range(10_000, 12_000)))


def make_spec(**overrides):
    base = dict(
        campaign_id=1,
        cohort="test",
        scanner_type=ScannerType.HOSTING,
        tool=Tool.MASSCAN,
        country="US",
        src_ips=(123456,),
        ports=(80,),
        start=100.0,
        rate_pps=1000.0,
        telescope_hits=500,
        ipv4_coverage=0.01,
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestCampaignSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_spec(src_ips=())
        with pytest.raises(ValueError):
            make_spec(ports=())
        with pytest.raises(ValueError):
            make_spec(rate_pps=0)
        with pytest.raises(ValueError):
            make_spec(ipv4_coverage=0.0)
        with pytest.raises(ValueError):
            make_spec(telescope_hits=-1)

    def test_duration_math(self):
        spec = make_spec(ipv4_coverage=0.5, ports=(80, 443), rate_pps=1e6)
        assert spec.total_probes == pytest.approx(0.5 * 2**32 * 2)
        assert spec.duration == pytest.approx(spec.total_probes / 1e6)
        assert spec.end == spec.start + spec.duration

    def test_shards_property(self):
        assert make_spec(src_ips=(1, 2, 3)).shards == 3


class TestSynthesis:
    def test_hit_count(self, scope, rng):
        batch = synthesize_campaign(make_spec(), scope, rng)
        assert len(batch) == 500

    def test_zero_hits(self, scope, rng):
        batch = synthesize_campaign(make_spec(telescope_hits=0), scope, rng)
        assert len(batch) == 0

    def test_destinations_in_telescope(self, scope, rng):
        batch = synthesize_campaign(make_spec(), scope, rng)
        assert np.all(scope.monitored.contains_array(batch.dst_ip))

    def test_all_syn(self, scope, rng):
        batch = synthesize_campaign(make_spec(), scope, rng)
        assert np.all(batch.flags == FLAG_SYN)

    def test_source_ip_stamped(self, scope, rng):
        batch = synthesize_campaign(make_spec(src_ips=(42,)), scope, rng)
        assert np.all(batch.src_ip == 42)

    def test_single_port(self, scope, rng):
        batch = synthesize_campaign(make_spec(ports=(443,)), scope, rng)
        assert np.all(batch.dst_port == 443)

    def test_multi_port_all_used(self, scope, rng):
        batch = synthesize_campaign(make_spec(ports=(80, 443, 8080)), scope, rng)
        assert set(np.unique(batch.dst_port).tolist()) == {80, 443, 8080}

    def test_times_within_window(self, scope, rng):
        spec = make_spec()
        batch = synthesize_campaign(spec, scope, rng)
        assert batch.time.min() >= spec.start
        assert batch.time.max() <= spec.end + 0.1

    def test_period_end_censoring(self, scope, rng):
        spec = make_spec(start=0.0, rate_pps=100.0, ipv4_coverage=1.0)
        cutoff = spec.duration / 2
        batch = synthesize_campaign(spec, scope, rng, period_end=cutoff)
        assert len(batch) < 500
        assert batch.time.max() < cutoff

    def test_sharded_split_even(self, scope, rng):
        spec = make_spec(src_ips=(1, 2, 3, 4), telescope_hits=403)
        batch = synthesize_campaign(spec, scope, rng)
        _, counts = np.unique(batch.src_ip, return_counts=True)
        assert counts.max() - counts.min() <= 1
        assert counts.sum() == 403

    def test_masscan_fingerprint_present(self, scope, rng):
        from repro.scanners import masscan_ip_id
        batch = synthesize_campaign(make_spec(tool=Tool.MASSCAN), scope, rng)
        assert np.all(batch.ip_id == masscan_ip_id(batch.dst_ip, batch.dst_port, batch.seq))

    def test_zmap_fingerprint_toggle(self, scope, rng):
        marked = synthesize_campaign(
            make_spec(tool=Tool.ZMAP, fingerprintable=True), scope, rng)
        assert np.all(marked.ip_id == 54321)
        unmarked = synthesize_campaign(
            make_spec(tool=Tool.ZMAP, fingerprintable=False), scope, rng)
        assert np.mean(unmarked.ip_id == 54321) < 0.01

    def test_mirai_fingerprint(self, scope, rng):
        batch = synthesize_campaign(make_spec(tool=Tool.MIRAI), scope, rng)
        assert np.array_equal(batch.seq, batch.dst_ip)

    def test_sequential_times_track_addresses(self, scope, rng):
        spec = make_spec(sequential=True, tool=Tool.NMAP, rate_pps=100.0,
                         ipv4_coverage=0.3)
        batch = synthesize_campaign(spec, scope, rng)
        order = np.argsort(batch.time)
        dst_sorted = batch.dst_ip[order].astype(np.float64)
        r = np.corrcoef(np.arange(dst_sorted.size), dst_sorted)[0, 1]
        assert r > 0.95


class TestBoundedPareto:
    def test_mean_formula_against_samples(self, rng):
        alpha, low, high = 1.3, 100.0, 50_000.0
        analytic = bounded_pareto_mean(alpha, low, high)
        samples = sample_bounded_pareto(rng, alpha, low, high, 200_000)
        assert abs(samples.mean() - analytic) / analytic < 0.03

    def test_mean_alpha_one_limit(self):
        near_one = bounded_pareto_mean(1.0001, 100, 10_000)
        at_one = bounded_pareto_mean(1.0, 100, 10_000)
        assert abs(near_one - at_one) / at_one < 0.01

    def test_samples_within_bounds(self, rng):
        s = sample_bounded_pareto(rng, 0.9, 10, 1000, 10_000)
        assert s.min() >= 10 and s.max() <= 1000

    def test_bad_bounds(self, rng):
        with pytest.raises(ValueError):
            sample_bounded_pareto(rng, 1.0, 100, 100, 10)
        with pytest.raises(ValueError):
            bounded_pareto_mean(1.0, 100, 50)

    def test_solve_low_achieves_mean(self, rng):
        alpha, high, target = 1.1, 71_536.0, 5_000.0
        low = solve_pareto_low(alpha, target, high)
        got = bounded_pareto_mean(alpha, low, high)
        assert abs(got - target) / target < 0.02

    def test_solve_low_floors(self):
        low = solve_pareto_low(1.1, 50.0, 71_536.0, low_floor=110.0)
        assert low == 110.0

    def test_calibrate_prefers_low(self):
        low, high = calibrate_pareto_bounds(1.1, 5_000.0, 125.0, 71_536.0)
        assert high == 71_536.0
        assert low > 125.0

    def test_calibrate_shrinks_cap_for_small_targets(self):
        low, high = calibrate_pareto_bounds(1.05, 200.0, 125.0, 71_536.0)
        assert low == 125.0
        assert high < 71_536.0
        got = bounded_pareto_mean(1.05, low, high)
        assert abs(got - 200.0) / 200.0 < 0.05

    @given(st.floats(min_value=150, max_value=20_000))
    @settings(max_examples=25, deadline=None)
    def test_calibrate_mean_property(self, target):
        low, high = calibrate_pareto_bounds(1.1, target, 125.0, 71_536.0)
        assert 125.0 <= low < high <= 71_536.0
        got = bounded_pareto_mean(1.1, low, high)
        assert abs(got - target) / target < 0.05
