"""Tests for the typeflow pass (repro.lint.typeflow, RPR010-014).

Each typeflow rule gets a seeded-violation fixture package plus a clean
counterpart; the pass itself is exercised for cache invalidation when the
unit lattice changes, worker-count independence, SARIF output against a
golden file, ``--select``/``--ignore`` filtering, and the
``[tool.repro-lint.paths]`` path-scoped rule sets.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    LintConfig,
    lattice_fingerprint,
    lint_repository,
)
from repro.lint.cli import main
from repro.lint.config import _fallback_parse, load_config
from repro.lint.typeflow import (
    AbstractValue,
    int_capacity,
    parse_dtype,
    promote_dtype,
)

GOLDEN_SARIF = Path(__file__).resolve().parent / "data" / "lint_typeflow_golden.sarif"

#: File rules are exercised by tests/test_lint.py; fixtures here disable
#: them so each assertion sees only the typeflow rule under test.
FILE_RULES = ["RPR001", "RPR002", "RPR003", "RPR004", "RPR005"]


def write_tree(root, files):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")


def run_project(tmp_path, files, **cfg_kwargs):
    write_tree(tmp_path, files)
    cfg_kwargs.setdefault("paths", ["pkg"])
    cfg_kwargs.setdefault("disable", FILE_RULES)
    cfg_kwargs.setdefault("dtype_layouts", [])
    config = LintConfig(root=tmp_path, **cfg_kwargs)
    diags, project, stats = lint_repository(config, use_cache=False)
    return diags, project, stats


def codes(diags):
    return [d.code for d in diags]


# ---------------------------------------------------------------------------
# lattice primitives
# ---------------------------------------------------------------------------


class TestLattice:
    def test_parse_dtype_struct_codes_and_endianness(self):
        assert parse_dtype("<u4") == ("uint32", "<")
        assert parse_dtype("u2") == ("uint16", None)
        assert parse_dtype("float64") == ("float64", None)
        assert parse_dtype("numpy.uint8") == ("uint8", None)
        assert parse_dtype("not-a-dtype") == (None, None)

    def test_int_capacity_loses_a_bit_when_signed(self):
        assert int_capacity("uint64") == 64
        assert int_capacity("int64") == 63
        assert int_capacity("uint16") == 16

    def test_promote_weak_literal_adapts_to_array_dtype(self):
        arr = AbstractValue(dtype="uint32", bits=32)
        lit = AbstractValue(dtype=None, bits=4)
        assert promote_dtype(arr, lit) == "uint32"

    def test_promote_signed_unsigned_mix_widens(self):
        a = AbstractValue(dtype="uint32")
        b = AbstractValue(dtype="int32")
        assert promote_dtype(a, b) == "int64"

    def test_fingerprint_is_stable(self):
        assert lattice_fingerprint() == lattice_fingerprint()


# ---------------------------------------------------------------------------
# RPR010: narrowing casts
# ---------------------------------------------------------------------------


RPR010_FILES = {
    "pkg/__init__.py": "",
    "pkg/narrow.py": """\
        import numpy as np

        def shrink(batch):
            ips = batch.src_ip
            return ips.astype(np.uint16)
    """,
}


class TestNarrowingCastRule:
    def test_narrowing_cast_of_column_flagged(self, tmp_path):
        diags, _, _ = run_project(tmp_path, RPR010_FILES)
        assert codes(diags) == ["RPR010"]
        assert "uint16" in diags[0].message
        assert "src_ip" in diags[0].message

    def test_widening_cast_clean(self, tmp_path):
        files = dict(RPR010_FILES)
        files["pkg/narrow.py"] = files["pkg/narrow.py"].replace(
            "np.uint16", "np.uint64"
        )
        diags, _, _ = run_project(tmp_path, files)
        assert diags == []

    def test_cast_proven_to_fit_by_shift_clean(self, tmp_path):
        files = {
            "pkg/__init__.py": "",
            "pkg/fold.py": """\
                import numpy as np

                def fold(batch):
                    wide = batch.src_ip.astype(np.uint64)
                    return (wide >> np.uint64(16)).astype(np.uint16)
            """,
        }
        diags, _, _ = run_project(tmp_path, files)
        assert diags == []


# ---------------------------------------------------------------------------
# RPR011: overflow-risk arithmetic
# ---------------------------------------------------------------------------


RPR011_FILES = {
    "pkg/__init__.py": "",
    "pkg/pack.py": """\
        import numpy as np

        def pack(batch):
            ips = batch.src_ip.astype(np.uint64)
            ports = batch.src_port.astype(np.uint64)
            return (ips << np.uint64(40)) | ports

        def pack_wrapping(batch):
            mixed = batch.src_ip.astype(np.uint64)
            with np.errstate(over="ignore"):
                mixed *= np.uint64(0x9E3779B97F4A7C15)
            return mixed
    """,
}


class TestOverflowArithmeticRule:
    def test_oversized_shift_flagged_and_errstate_respected(self, tmp_path):
        diags, _, _ = run_project(tmp_path, RPR011_FILES)
        assert codes(diags) == ["RPR011"]
        assert "shl" in diags[0].message
        assert "np.errstate" in diags[0].message

    def test_shift_within_capacity_clean(self, tmp_path):
        files = dict(RPR011_FILES)
        files["pkg/pack.py"] = files["pkg/pack.py"].replace(
            "np.uint64(40)", "np.uint64(16)"
        )
        diags, _, _ = run_project(tmp_path, files)
        assert diags == []

    def test_suppression_comment_silences_site(self, tmp_path):
        files = dict(RPR011_FILES)
        files["pkg/pack.py"] = files["pkg/pack.py"].replace(
            "return (ips << np.uint64(40)) | ports",
            "return (ips << np.uint64(40)) | ports"
            "  # repro-lint: disable=RPR011",
        )
        diags, _, _ = run_project(tmp_path, files)
        assert diags == []


# ---------------------------------------------------------------------------
# RPR012: unit mixing
# ---------------------------------------------------------------------------


RPR012_FILES = {
    "pkg/__init__.py": "",
    "pkg/units.py": """\
        def drift(batch):
            return batch.time + batch.src_port

        def lagged(batch, cutoff_seconds):
            return batch.src_port > cutoff_seconds
    """,
}


class TestUnitMixingRule:
    def test_add_and_compare_across_units_flagged(self, tmp_path):
        diags, _, _ = run_project(tmp_path, RPR012_FILES)
        assert codes(diags) == ["RPR012", "RPR012"]
        assert "seconds" in diags[0].message
        assert "port" in diags[0].message

    def test_same_unit_arithmetic_clean(self, tmp_path):
        files = {
            "pkg/__init__.py": "",
            "pkg/units.py": """\
                def relative(batch):
                    return batch.time - batch.time[0]

                def padded(batch):
                    return batch.time + 0.5
            """,
        }
        diags, _, _ = run_project(tmp_path, files)
        assert diags == []


# ---------------------------------------------------------------------------
# RPR013: persisted-dtype drift
# ---------------------------------------------------------------------------


RPR013_SPEC = "pkg/decl.py:_COLUMNS:pkg/ser.py:_ORDER"

RPR013_LAYOUT = {
    "pkg/__init__.py": "",
    "pkg/decl.py": '_COLUMNS = (("time", "float64"), ("src_ip", "uint32"))\n',
    "pkg/ser.py": '_ORDER = (("time", "<f8"), ("src_ip", "<u2"))\n',
}


class TestPersistedDtypeDriftRule:
    def test_layout_width_drift_flagged(self, tmp_path):
        diags, _, _ = run_project(
            tmp_path, RPR013_LAYOUT, dtype_layouts=[RPR013_SPEC]
        )
        assert codes(diags) == ["RPR013"]
        assert "declared uint32" in diags[0].message
        assert "uint16" in diags[0].message

    def test_missing_endianness_marker_flagged(self, tmp_path):
        files = dict(RPR013_LAYOUT)
        files["pkg/ser.py"] = '_ORDER = (("time", "f8"), ("src_ip", "<u4"))\n'
        diags, _, _ = run_project(
            tmp_path, files, dtype_layouts=[RPR013_SPEC]
        )
        assert codes(diags) == ["RPR013"]
        assert "little-endian" in diags[0].message

    def test_matching_layouts_clean(self, tmp_path):
        files = dict(RPR013_LAYOUT)
        files["pkg/ser.py"] = '_ORDER = (("time", "<f8"), ("src_ip", "<u4"))\n'
        diags, _, _ = run_project(
            tmp_path, files, dtype_layouts=[RPR013_SPEC]
        )
        assert diags == []

    def test_savez_sink_dtype_drift_flagged(self, tmp_path):
        files = {
            "pkg/__init__.py": "",
            "pkg/persist.py": """\
                import numpy as np

                def persist(path, batch):
                    np.savez(path, time=batch.time.astype(np.float32))
            """,
        }
        diags, _, _ = run_project(tmp_path, files)
        assert codes(diags) == ["RPR013"]
        assert "float32" in diags[0].message
        assert "float64" in diags[0].message

    def test_savez_declared_dtype_clean(self, tmp_path):
        files = {
            "pkg/__init__.py": "",
            "pkg/persist.py": """\
                import numpy as np

                def persist(path, batch):
                    np.savez(path, time=batch.time)
            """,
        }
        diags, _, _ = run_project(tmp_path, files)
        assert diags == []


# ---------------------------------------------------------------------------
# RPR014: float accumulation
# ---------------------------------------------------------------------------


RPR014_FILES = {
    "pkg/__init__.py": "",
    "pkg/accum.py": """\
        import numpy as np

        def total(batch):
            return np.sum(batch.time, dtype=np.float32)

        def total_py(batch):
            return sum(batch.time)
    """,
}


class TestFloatAccumulationRule:
    def test_float32_and_python_sum_flagged(self, tmp_path):
        diags, _, _ = run_project(tmp_path, RPR014_FILES)
        assert codes(diags) == ["RPR014", "RPR014"]
        assert "float32" in diags[0].message
        assert "sum()" in diags[1].message

    def test_float64_accumulators_clean(self, tmp_path):
        files = {
            "pkg/__init__.py": "",
            "pkg/accum.py": """\
                import numpy as np

                def total(batch):
                    return np.sum(batch.time)

                def total_explicit(batch):
                    return np.sum(batch.time, dtype=np.float64)
            """,
        }
        diags, _, _ = run_project(tmp_path, files)
        assert diags == []

    def test_float32_loop_accumulator_flagged(self, tmp_path):
        files = {
            "pkg/__init__.py": "",
            "pkg/stream.py": """\
                import numpy as np

                def stream(batch):
                    acc = np.float32(0.0)
                    for i in range(3):
                        acc += batch.time[0]
                    return acc
            """,
        }
        diags, _, _ = run_project(tmp_path, files)
        assert codes(diags) == ["RPR014"]
        assert "loop" in diags[0].message


# ---------------------------------------------------------------------------
# interprocedural propagation
# ---------------------------------------------------------------------------


class TestInterprocedural:
    def test_column_provenance_crosses_call_boundaries(self, tmp_path):
        files = {
            "pkg/__init__.py": "",
            "pkg/helpers.py": """\
                import numpy as np

                def widen(values):
                    return values.astype(np.uint64)
            """,
            "pkg/use.py": """\
                import numpy as np

                from pkg.helpers import widen

                def pack(batch):
                    wide = widen(batch.src_ip)
                    return wide.astype(np.uint8)
            """,
        }
        diags, _, _ = run_project(tmp_path, files)
        assert codes(diags) == ["RPR010"]
        assert "uint8" in diags[0].message
        assert diags[0].path.endswith("use.py")


# ---------------------------------------------------------------------------
# caching: the unit lattice participates in the cache key
# ---------------------------------------------------------------------------


class TestLatticeCache:
    def _run(self, tmp_path, cache_dir):
        config = LintConfig(
            root=tmp_path, paths=["pkg"], disable=FILE_RULES, dtype_layouts=[]
        )
        return lint_repository(
            config, workers=0, cache_dir=cache_dir, use_cache=True
        )

    def test_warm_cache_reproduces_typeflow_findings(self, tmp_path):
        write_tree(tmp_path, RPR011_FILES)
        cache_dir = tmp_path / ".cache"
        cold_diags, _, _ = self._run(tmp_path, cache_dir)
        warm_diags, _, warm = self._run(tmp_path, cache_dir)
        assert warm.cache_misses == 0
        assert warm.parsed == 0
        assert warm_diags == cold_diags
        assert codes(warm_diags) == ["RPR011"]

    def test_lattice_change_invalidates_cache(self, tmp_path, monkeypatch):
        write_tree(tmp_path, RPR011_FILES)
        cache_dir = tmp_path / ".cache"
        self._run(tmp_path, cache_dir)
        monkeypatch.setattr(
            "repro.lint.project.lattice_fingerprint", lambda: "tweaked"
        )
        _, _, stats = self._run(tmp_path, cache_dir)
        assert stats.cache_hits == 0  # new lattice, every entry misses


# ---------------------------------------------------------------------------
# worker-count equivalence
# ---------------------------------------------------------------------------


class TestWorkerEquivalence:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_typeflow_diagnostics_identical_at_any_worker_count(
        self, tmp_path, workers
    ):
        files = {
            **RPR010_FILES,
            **{k: v for k, v in RPR011_FILES.items() if k != "pkg/__init__.py"},
            **{k: v for k, v in RPR012_FILES.items() if k != "pkg/__init__.py"},
        }
        write_tree(tmp_path, files)
        config = LintConfig(
            root=tmp_path, paths=["pkg"], disable=FILE_RULES, dtype_layouts=[]
        )
        serial, _, _ = lint_repository(config, workers=0, use_cache=False)
        parallel, _, _ = lint_repository(
            config, workers=workers, use_cache=False
        )
        assert sorted(codes(serial)) == [
            "RPR010", "RPR011", "RPR012", "RPR012",
        ]
        assert parallel == serial


# ---------------------------------------------------------------------------
# --select / --ignore
# ---------------------------------------------------------------------------


MIXED_FILES = {
    "pkg/__init__.py": "",
    "pkg/a.py": """\
        from repro._util.rng import derive_rng

        def f(rng, year):
            return derive_rng(rng, "year", year)
    """,
    "pkg/b.py": """\
        from repro._util.rng import derive_rng

        def g(rng):
            return derive_rng(rng, "year", 2020)
    """,
    "pkg/pack.py": RPR011_FILES["pkg/pack.py"],
}


def write_cli_project(tmp_path, files):
    write_tree(tmp_path, files)
    disable = ", ".join(f'"{c}"' for c in FILE_RULES)
    (tmp_path / "pyproject.toml").write_text(textwrap.dedent(f"""\
        [tool.repro-lint]
        paths = ["pkg"]
        disable = [{disable}]
        cache = ""
        schema-sites = []
        dtype-layouts = []
    """), encoding="utf-8")
    return tmp_path / "pyproject.toml"


def cli_result_codes(pyproject, extra_args):
    out_file = pyproject.parent / "out.sarif"
    status = main([
        "--config", str(pyproject),
        "--format", "sarif", "--output", str(out_file),
        "--no-baseline", *extra_args,
    ])
    sarif = json.loads(out_file.read_text())
    return status, [r["ruleId"] for r in sarif["runs"][0]["results"]]


class TestSelectIgnore:
    def test_select_keeps_only_matching_codes(self, tmp_path, capsys):
        pyproject = write_cli_project(tmp_path, MIXED_FILES)
        status, rule_ids = cli_result_codes(pyproject, ["--select", "RPR011"])
        capsys.readouterr()
        assert status == 1
        assert rule_ids == ["RPR011"]

    def test_ignore_drops_matching_codes(self, tmp_path, capsys):
        pyproject = write_cli_project(tmp_path, MIXED_FILES)
        status, rule_ids = cli_result_codes(pyproject, ["--ignore", "RPR011"])
        capsys.readouterr()
        assert status == 1
        assert rule_ids == ["RPR006"]

    def test_select_prefix_matches_family(self, tmp_path, capsys):
        pyproject = write_cli_project(tmp_path, MIXED_FILES)
        status, rule_ids = cli_result_codes(pyproject, ["--select", "RPR01"])
        capsys.readouterr()
        assert status == 1
        assert rule_ids == ["RPR011"]

    def test_invalid_code_prefix_is_a_usage_error(self, tmp_path, capsys):
        pyproject = write_cli_project(tmp_path, MIXED_FILES)
        status = main(["--config", str(pyproject), "--select", "E501"])
        err = capsys.readouterr().err
        assert status == 2
        assert "RPR" in err

    def test_config_select_applies_without_cli_flag(self, tmp_path):
        diags, _, _ = run_project(tmp_path, MIXED_FILES, select=["RPR012"])
        assert diags == []  # nothing in the fixture matches RPR012


# ---------------------------------------------------------------------------
# [tool.repro-lint.paths]: path-scoped rule sets
# ---------------------------------------------------------------------------


PATHS_BLOCK = """\
    [tool.repro-lint]
    cache = ""
    schema-sites = []

    [tool.repro-lint.paths]
    "src/repro" = []
    "benchmarks" = ["RPR001", "RPR006"]
"""


class TestPathScopedRules:
    def test_paths_block_sets_targets_and_rule_sets(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(textwrap.dedent(PATHS_BLOCK), encoding="utf-8")
        cfg = load_config(pyproject)
        assert cfg.paths == ["src/repro", "benchmarks"]
        assert cfg.path_rules == {
            "src/repro": [], "benchmarks": ["RPR001", "RPR006"],
        }

    def test_fallback_parser_reads_subtables(self):
        parsed = _fallback_parse(textwrap.dedent(PATHS_BLOCK))
        assert parsed["cache"] == ""
        assert parsed["paths"] == {
            "src/repro": [], "benchmarks": ["RPR001", "RPR006"],
        }

    def test_load_config_via_fallback_parser(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.lint.config._toml", None)
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(textwrap.dedent(PATHS_BLOCK), encoding="utf-8")
        cfg = load_config(pyproject)
        assert cfg.paths == ["src/repro", "benchmarks"]
        assert cfg.path_rules["benchmarks"] == ["RPR001", "RPR006"]

    def test_scalar_paths_key_still_accepted(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(textwrap.dedent("""\
            [tool.repro-lint]
            paths = ["pkg"]
        """), encoding="utf-8")
        cfg = load_config(pyproject)
        assert cfg.paths == ["pkg"]
        assert cfg.path_rules == {}

    def test_direct_path_rules_key_rejected(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(textwrap.dedent("""\
            [tool.repro-lint]
            path-rules = ["pkg"]
        """), encoding="utf-8")
        with pytest.raises(ValueError, match="paths"):
            load_config(pyproject)

    def test_longest_prefix_wins(self):
        cfg = LintConfig(path_rules={
            "pkg": ["RPR011"],
            "pkg/hot": [],
        })
        assert cfg.is_disabled_for("pkg/pack.py", "RPR011")
        assert not cfg.is_disabled_for("pkg/hot/pack.py", "RPR011")
        assert not cfg.is_disabled_for("other/pack.py", "RPR011")

    def test_relaxed_path_filters_findings_end_to_end(self, tmp_path):
        diags, _, _ = run_project(
            tmp_path, RPR011_FILES, path_rules={"pkg": ["RPR011"]}
        )
        assert diags == []

    def test_roundtrip_through_worker_payload(self):
        cfg = LintConfig(path_rules={"benchmarks": ["RPR001"]})
        clone = LintConfig.from_payload(cfg.to_payload())
        assert clone.path_rules == {"benchmarks": ["RPR001"]}


# ---------------------------------------------------------------------------
# SARIF golden for a typeflow finding
# ---------------------------------------------------------------------------


class TestTypeflowSarif:
    def test_sarif_output_matches_golden(self, tmp_path, capsys):
        pyproject = write_cli_project(tmp_path, RPR011_FILES)
        out_file = tmp_path / "lint.sarif"
        status = main([
            "--config", str(pyproject),
            "--format", "sarif", "--output", str(out_file),
            "--no-baseline",
        ])
        capsys.readouterr()
        assert status == 1
        produced = json.loads(out_file.read_text())
        # The driver version tracks the library; normalise for the golden.
        produced["runs"][0]["tool"]["driver"]["version"] = "0.0.0"
        golden = json.loads(GOLDEN_SARIF.read_text())
        assert produced == golden
