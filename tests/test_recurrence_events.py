"""Unit tests for recurrence (§6.6) and event-response (§4.3) analyses."""

import numpy as np
import pytest

from repro.core.campaigns import ScanTable
from repro.core.events import event_response, port_daily_packets
from repro.core.pipeline import PeriodAnalysis, analyze_period
from repro.core.recurrence import (
    institutional_daily_scanners,
    recurrence_by_type,
    recurrence_stats,
    split_scan_times,
)
from repro.enrichment.types import ScannerType
from repro.scanners import Tool
from repro.telescope.packet import PacketBatch

_DAY = 86_400.0


def table_with_scan_times(per_source, scanner_type=None):
    """Build a ScanTable from {src: [start times]}."""
    src, start = [], []
    for s, times in per_source.items():
        for t in times:
            src.append(s)
            start.append(t)
    n = len(src)
    start_arr = np.array(start, dtype=float)
    table = ScanTable(
        src_ip=np.array(src, dtype=np.uint32),
        start=start_arr,
        end=start_arr + 60.0,
        packets=np.full(n, 200, dtype=np.int64),
        distinct_dsts=np.full(n, 150, dtype=np.int64),
        port_sets=[np.array([80], dtype=np.int64)] * n,
        primary_port=np.full(n, 80, dtype=np.uint16),
        tool=np.array([Tool.UNKNOWN] * n, dtype=object),
        match_fraction=np.ones(n),
        speed_pps=np.full(n, 500.0),
        coverage=np.full(n, 0.01),
    )
    if scanner_type is not None:
        table.scanner_type = np.array([scanner_type] * n, dtype=object)
    return table


class TestSplitScanTimes:
    """The lexsort+split grouping must match a naive per-source dict walk
    bit for bit — it replaced one, and the streaming recurrence finalise
    step reuses it."""

    def _naive_groups(self, scans):
        groups = {}
        for s, t in zip(scans.src_ip.tolist(), scans.start.tolist()):
            groups.setdefault(s, []).append(t)
        return {s: np.sort(np.array(ts, dtype=float))
                for s, ts in groups.items()}

    def test_matches_naive_grouping(self, analysis2020):
        scans = analysis2020.study_scans
        sources, offsets, times = split_scan_times(scans.src_ip, scans.start)
        naive = self._naive_groups(scans)
        assert sources.tolist() == sorted(naive)
        for i, src in enumerate(sources.tolist()):
            got = times[offsets[i]:offsets[i + 1]]
            assert np.array_equal(got, naive[src]), src

    def test_stats_bit_identical_to_naive(self, analysis2020):
        from repro._util.stats import empirical_cdf

        scans = analysis2020.study_scans
        stats = recurrence_stats(scans)
        naive = self._naive_groups(scans)

        counts = np.array([naive[s].size for s in sorted(naive)],
                          dtype=np.int64)
        downtimes = np.concatenate(
            [np.diff(naive[s]) for s in sorted(naive)]
        ) if counts.size else np.array([])

        assert stats.sources == len(naive)
        assert stats.fraction_recurring == float(np.mean(counts >= 2))
        assert stats.fraction_over_100_scans == float(np.mean(counts > 100))
        assert stats.fraction_downtime_within_day == float(
            np.mean(downtimes <= _DAY)
        )
        assert stats.daily_mode_fraction == float(np.mean(
            (downtimes >= 0.75 * _DAY) & (downtimes <= 1.25 * _DAY)
        ))
        for got, want in zip(stats.scan_count_cdf, empirical_cdf(counts)):
            assert np.array_equal(got, want)
        for got, want in zip(stats.downtime_cdf, empirical_cdf(downtimes)):
            assert np.array_equal(got, want)

    def test_empty_table(self):
        sources, offsets, times = split_scan_times(
            np.array([], dtype=np.uint32), np.array([], dtype=float)
        )
        assert sources.size == 0
        assert offsets.tolist() == [0]
        assert times.size == 0


class TestRecurrenceStats:
    def test_single_shot_sources(self):
        table = table_with_scan_times({1: [0.0], 2: [100.0]})
        stats = recurrence_stats(table)
        assert stats.sources == 2
        assert stats.fraction_recurring == 0.0
        assert stats.downtime_cdf[0].size == 0

    def test_recurring_source_downtimes(self):
        table = table_with_scan_times({1: [0.0, _DAY, 2 * _DAY]})
        stats = recurrence_stats(table)
        assert stats.fraction_recurring == 1.0
        assert stats.fraction_downtime_within_day == 1.0
        assert stats.daily_mode_fraction == 1.0

    def test_weekly_scanner_not_daily_mode(self):
        table = table_with_scan_times({1: [0.0, 7 * _DAY, 14 * _DAY]})
        stats = recurrence_stats(table)
        assert stats.daily_mode_fraction == 0.0
        assert stats.fraction_downtime_within_day == 0.0

    def test_over_100_scans_fraction(self):
        table = table_with_scan_times({
            1: [i * 3600.0 for i in range(150)],
            2: [0.0],
        })
        stats = recurrence_stats(table)
        assert stats.fraction_over_100_scans == pytest.approx(0.5)

    def test_empty(self):
        stats = recurrence_stats(table_with_scan_times({}))
        assert stats.sources == 0

    def test_by_type_split(self):
        inst = table_with_scan_times({1: [0.0, _DAY]},
                                     scanner_type=ScannerType.INSTITUTIONAL)
        res = table_with_scan_times({2: [0.0]},
                                    scanner_type=ScannerType.RESIDENTIAL)
        # Merge by stacking columns via select-trick: use separate tables.
        merged = table_with_scan_times({1: [0.0, _DAY], 2: [0.0]})
        merged.scanner_type = np.array(
            [ScannerType.INSTITUTIONAL, ScannerType.INSTITUTIONAL,
             ScannerType.RESIDENTIAL], dtype=object)
        by_type = recurrence_by_type(merged)
        assert by_type[ScannerType.INSTITUTIONAL].fraction_recurring == 1.0
        assert by_type[ScannerType.RESIDENTIAL].fraction_recurring == 0.0

    def test_institutional_daily_scanners(self):
        daily = {1: [i * _DAY for i in range(10)]}
        sparse = {2: [i * 5 * _DAY for i in range(6)]}
        table = table_with_scan_times({**daily, **sparse},
                                      scanner_type=ScannerType.INSTITUTIONAL)
        assert institutional_daily_scanners(table) == 1


def event_batch(port=8291, days=20, disclosure_day=5, baseline_per_day=50,
                spike=30, decay_days=3.0, seed=0):
    """A batch with flat baseline and a decaying post-disclosure surge."""
    gen = np.random.default_rng(seed)
    times = []
    for day in range(days):
        count = int(gen.poisson(baseline_per_day))
        if day >= disclosure_day:
            count += int(baseline_per_day * spike *
                         0.5 ** ((day - disclosure_day) / decay_days))
        times.extend(gen.uniform(day * _DAY, (day + 1) * _DAY, count).tolist())
    n = len(times)
    return PacketBatch(
        time=np.sort(np.array(times)),
        src_ip=gen.integers(1, 2**31, n, dtype=np.uint32),
        dst_ip=gen.integers(0x64400000, 0x64410000, n, dtype=np.uint32),
        src_port=gen.integers(1024, 65535, n, dtype=np.uint16),
        dst_port=np.full(n, port, dtype=np.uint16),
        ip_id=gen.integers(0, 2**16, n, dtype=np.uint16),
        seq=gen.integers(0, 2**32, n, dtype=np.uint32),
        ttl=np.full(n, 50, dtype=np.uint8),
        window=np.full(n, 1024, dtype=np.uint16),
        flags=np.full(n, 2, dtype=np.uint8),
    )


class TestEventResponse:
    def test_daily_series_shape(self):
        batch = event_batch()
        daily = port_daily_packets(batch, 8291, 20)
        assert daily.size == 20
        assert daily[:5].mean() == pytest.approx(50, rel=0.05)
        assert daily[5] > 1000

    def test_daily_series_other_port_empty(self):
        batch = event_batch()
        assert port_daily_packets(batch, 9999, 20).sum() == 0

    def test_days_validation(self):
        with pytest.raises(ValueError):
            port_daily_packets(event_batch(), 8291, 0)

    def _analysis(self, batch, days=20):
        return analyze_period(batch, year=2018, days=days)

    def test_spike_and_decay_measured(self):
        analysis = self._analysis(event_batch())
        response = event_response(analysis, 8291, 5)
        assert response.peak_factor > 10
        # Activity must have decayed most of the way back by the period end.
        assert response.relative_series[-1] < 0.15 * response.peak_factor

    def test_returns_to_normal(self):
        """§4.3: the KS test finds the distribution back to baseline."""
        analysis = self._analysis(event_batch(decay_days=1.5))
        response = event_response(analysis, 8291, 5)
        assert response.returned_to_normal
        assert response.days_to_normal is not None
        assert response.days_to_normal <= 15

    def test_no_event_port_stays_normal(self):
        analysis = self._analysis(event_batch(spike=0))
        response = event_response(analysis, 8291, 5)
        assert response.peak_factor < 1.5
        assert response.days_to_normal == 0

    def test_disclosure_day_bounds(self):
        analysis = self._analysis(event_batch())
        with pytest.raises(ValueError):
            event_response(analysis, 8291, 25)
        with pytest.raises(ValueError):
            event_response(analysis, 8291, -1)

    def test_window_validation(self):
        analysis = self._analysis(event_batch())
        with pytest.raises(ValueError):
            event_response(analysis, 8291, 5, window_days=1)
