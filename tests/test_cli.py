"""Tests for the repro-scan command-line interface."""

import pytest

from repro.cli import main
from repro.telescope import read_trace


@pytest.fixture(scope="module")
def capture(tmp_path_factory):
    """A small simulated capture written once for the CLI tests."""
    out = tmp_path_factory.mktemp("cli") / "capture.rtrace"
    code = main([
        "simulate", "--year", "2018", "--days", "5",
        "--max-packets", "40000", "--min-scans", "120",
        "--seed", "9", "--out", str(out),
    ])
    assert code == 0
    return out


class TestSimulate:
    def test_writes_trace_with_metadata(self, capture):
        batch, meta = read_trace(capture)
        assert len(batch) > 10_000
        assert meta["year"] == 2018
        assert meta["days"] == 5
        assert 0 < meta["packet_scale"] <= 5e-3

    def test_pcap_copy(self, tmp_path, capsys):
        out = tmp_path / "c.rtrace"
        pcap = tmp_path / "c.pcap"
        code = main([
            "simulate", "--year", "2016", "--days", "3",
            "--max-packets", "15000", "--min-scans", "60",
            "--out", str(out), "--pcap", str(pcap),
        ])
        assert code == 0
        assert pcap.exists()
        text = capsys.readouterr().out
        assert "SYN share" in text

    def test_deterministic_across_runs(self, tmp_path):
        a, b = tmp_path / "a.rtrace", tmp_path / "b.rtrace"
        for path in (a, b):
            main(["simulate", "--year", "2016", "--days", "3",
                  "--max-packets", "15000", "--min-scans", "60",
                  "--seed", "4", "--out", str(path)])
        batch_a, _ = read_trace(a)
        batch_b, _ = read_trace(b)
        assert len(batch_a) == len(batch_b)
        assert (batch_a.seq == batch_b.seq).all()


class TestAnalyze:
    def test_report_sections(self, capture, capsys):
        assert main(["analyze", str(capture)]) == 0
        text = capsys.readouterr().out
        assert "Packets/day" in text
        assert "Institutional" in text
        assert "known scanners:" in text
        assert "counting inflation" in text

    def test_year_override(self, capture, capsys):
        assert main(["analyze", str(capture), "--year", "2018"]) == 0

    def test_missing_metadata_errors(self, tmp_path, capsys):
        from repro.telescope import write_trace
        from repro.telescope.packet import PacketBatch
        bare = tmp_path / "bare.rtrace"
        write_trace(bare, PacketBatch.empty())
        assert main(["analyze", str(bare)]) == 2
        assert "year/days metadata" in capsys.readouterr().err


class TestReport:
    def test_multi_year_table(self, capsys):
        code = main(["report", "--years", "2015,2017", "--days", "3",
                     "--max-packets", "15000"])
        assert code == 0
        text = capsys.readouterr().out
        assert "2015" in text and "2017" in text
        assert "masscan (by scans)" in text

    def test_bad_years_rejected(self, capsys):
        assert main(["report", "--years", "2013"]) == 2
        assert main(["report", "--years", "twenty"]) == 2


class TestFingerprint:
    def test_tool_shares_printed(self, capture, capsys):
        assert main(["fingerprint", str(capture)]) == 0
        text = capsys.readouterr().out
        assert "packets" in text
        assert "masscan" in text or "unknown" in text

    def test_empty_capture(self, tmp_path, capsys):
        from repro.telescope import write_trace
        from repro.telescope.packet import PacketBatch
        empty = tmp_path / "empty.rtrace"
        write_trace(empty, PacketBatch.empty())
        assert main(["fingerprint", str(empty)]) == 1


class TestAnonymize:
    def test_roundtrip_preserves_structure(self, capture, tmp_path, capsys):
        out = tmp_path / "anon.rtrace"
        code = main(["anonymize", str(capture), "--out", str(out),
                     "--key", "987654321"])
        assert code == 0
        import numpy as np
        original, _ = read_trace(capture)
        anonymised, meta = read_trace(out)
        assert meta["anonymized"] is True
        assert len(anonymised) == len(original)
        assert not np.array_equal(anonymised.src_ip, original.src_ip)
        assert np.array_equal(anonymised.dst_ip, original.dst_ip)

    def test_bad_key(self, capture, tmp_path, capsys):
        out = tmp_path / "anon.rtrace"
        assert main(["anonymize", str(capture), "--out", str(out),
                     "--key", "-5"]) == 2


class TestStream:
    def test_stream_summary_and_stats(self, capture, tmp_path, capsys):
        stats_json = tmp_path / "stats.json"
        code = main([
            "stream", str(capture), "--batch-size", "8192",
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            "--progress-every", "1", "--stats-json", str(stats_json),
        ])
        assert code == 0
        out = capsys.readouterr()
        assert "identified" in out.out
        assert "peak RSS" in out.out
        assert "w=1" in out.err  # progress lines on stderr
        import json
        stats = json.loads(stats_json.read_text())
        assert stats["packets"] > 10_000
        assert stats["windows"] >= 2
        assert stats["peak_rss_bytes"] > 0

    def test_stream_matches_batch(self, capture, capsys):
        assert main(["stream", str(capture), "--batch-size", "4096"]) == 0
        streamed = capsys.readouterr().out
        from repro.core.campaigns import identify_scans
        batch, _ = read_trace(capture)
        expected = identify_scans(batch)
        assert f"identified {len(expected):,} scan(s)" in streamed

    def test_stream_resumes(self, capture, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        assert main(["stream", str(capture), "--batch-size", "8192",
                     "--checkpoint-dir", str(ckpt)]) == 0
        capsys.readouterr()
        assert main(["stream", str(capture), "--batch-size", "8192",
                     "--checkpoint-dir", str(ckpt)]) == 0
        assert "resumed from checkpoint" in capsys.readouterr().err

    def test_missing_capture(self, tmp_path, capsys):
        assert main(["stream", str(tmp_path / "missing.rtrace")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_stream_report_matches_analyze_report(self, capture, capsys):
        """The CI diff in miniature: both --report paths must print the
        byte-identical paper report on stdout."""
        assert main(["analyze", str(capture), "--report"]) == 0
        batch_out = capsys.readouterr().out
        assert "paper report" in batch_out
        assert "volatility" in batch_out
        assert main(["stream", str(capture), "--report",
                     "--batch-size", "8192"]) == 0
        out = capsys.readouterr()
        assert out.out == batch_out
        assert "analysis state" in out.err  # diagnostics stay on stderr
        assert main(["stream", str(capture), "--report", "--shards", "2",
                     "--batch-size", "4096"]) == 0
        assert capsys.readouterr().out == batch_out

    def test_stream_report_needs_period(self, tmp_path, capsys):
        from repro.telescope import write_trace
        from repro.telescope.packet import PacketBatch
        bare = tmp_path / "bare.rtrace"
        write_trace(bare, PacketBatch.empty())
        assert main(["stream", str(bare), "--report"]) == 2
        assert "year" in capsys.readouterr().err

    def test_cache_key_resolution(self, capture, tmp_path, capsys):
        # A capture argument that is not a file resolves through --cache-dir.
        cache = tmp_path / "cache"
        cache.mkdir()
        (cache / "deadbeef.rtrace").write_bytes(capture.read_bytes())
        assert main(["stream", "deadbeef", "--cache-dir", str(cache),
                     "--batch-size", "8192"]) == 0
        assert "identified" in capsys.readouterr().out


class TestFlagParity:
    def test_capture_commands_accept_shared_flags(self, capture, tmp_path):
        # --workers/--cache-dir/--batch-size parse on every capture loader.
        assert main(["analyze", str(capture), "--workers", "0",
                     "--cache-dir", str(tmp_path / "c1"),
                     "--batch-size", "4096"]) == 0
        assert main(["fingerprint", str(capture), "--workers", "0",
                     "--cache-dir", str(tmp_path / "c2"),
                     "--batch-size", "4096"]) == 0
        out = tmp_path / "anon.rtrace"
        assert main(["anonymize", str(capture), "--out", str(out),
                     "--key", "24680", "--workers", "0",
                     "--cache-dir", str(tmp_path / "c3"),
                     "--batch-size", "4096"]) == 0

    def test_simulate_accepts_workers(self, tmp_path):
        out = tmp_path / "w.rtrace"
        assert main(["simulate", "--year", "2016", "--days", "2",
                     "--max-packets", "8000", "--min-scans", "30",
                     "--workers", "1", "--out", str(out)]) == 0
        assert out.exists()


class TestJsonReport:
    def test_json_matches_between_batch_and_stream(self, capture, capsys):
        import json

        assert main(["analyze", str(capture), "--report", "--json"]) == 0
        batch_out = capsys.readouterr().out
        doc = json.loads(batch_out)
        assert doc["year"] == 2018 and doc["days"] == 5
        assert main(["stream", str(capture), "--report", "--json",
                     "--batch-size", "8192"]) == 0
        assert capsys.readouterr().out == batch_out

    def test_json_requires_report(self, capture, capsys):
        assert main(["analyze", str(capture), "--json"]) == 2
        assert "--report" in capsys.readouterr().err
        assert main(["stream", str(capture), "--json"]) == 2
        assert "--report" in capsys.readouterr().err


class TestCacheCommand:
    def _fake_cache(self, tmp_path):
        # `cache ls|prune` manage files by size and mtime only, so plain
        # placeholder entries exercise the LRU mechanics.
        import os

        cache = tmp_path / "cache"
        cache.mkdir()
        old = cache / ("a" * 32 + ".rtrace")
        new = cache / ("b" * 32 + ".rtrace")
        old.write_bytes(b"x" * 2048)
        new.write_bytes(b"y" * 1024)
        os.utime(old, (1_000_000, 1_000_000))
        os.utime(new, (2_000_000, 2_000_000))
        return cache, old, new

    def test_ls_lists_lru_first(self, tmp_path, capsys):
        cache, old, new = self._fake_cache(tmp_path)
        assert main(["cache", "ls", "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr()
        lines = out.out.splitlines()
        assert lines[0].startswith("a" * 32)
        assert lines[1].startswith("b" * 32)
        assert "2 entr(y/ies)" in out.err

    def test_prune_evicts_oldest_until_budget(self, tmp_path, capsys):
        cache, old, new = self._fake_cache(tmp_path)
        assert main(["cache", "prune", "--cache-dir", str(cache),
                     "--max-bytes", "1K"]) == 0
        out = capsys.readouterr()
        assert not old.exists() and new.exists()
        assert "a" * 32 in out.out
        assert "1 evicted" in out.err

    def test_prune_within_budget_is_a_noop(self, tmp_path, capsys):
        cache, old, new = self._fake_cache(tmp_path)
        assert main(["cache", "prune", "--cache-dir", str(cache),
                     "--max-bytes", "1M"]) == 0
        assert old.exists() and new.exists()
        assert "0 evicted" in capsys.readouterr().err

    def test_prune_rejects_malformed_budget(self, tmp_path, capsys):
        cache, _, _ = self._fake_cache(tmp_path)
        assert main(["cache", "prune", "--cache-dir", str(cache),
                     "--max-bytes", "lots"]) == 2
        assert "malformed size" in capsys.readouterr().err


class TestGracefulSignals:
    def test_sigterm_mid_stream_flushes_and_exits_zero(
        self, capture, tmp_path, capsys, monkeypatch
    ):
        """SIGTERM between windows takes the graceful path: checkpoint
        flushed, 'resumable from' line, exit code 0 — and the next run
        resumes from the flushed checkpoint."""
        import os
        import signal
        import threading

        if threading.current_thread() is not threading.main_thread():
            pytest.skip("signal handlers need the main thread")

        import repro.stream.engine as engine_mod

        original = engine_mod.StreamEngine._refresh
        windows = []

        def refresh_then_signal(stats, identifier, started, analyses=None):
            original(stats, identifier, started, analyses)
            windows.append(None)
            if len(windows) == 3:
                # delivered synchronously on this (main) thread, exactly
                # like an operator's `kill` between two windows
                os.kill(os.getpid(), signal.SIGTERM)

        monkeypatch.setattr(
            engine_mod.StreamEngine, "_refresh",
            staticmethod(refresh_then_signal),
        )
        ckpt = tmp_path / "ckpt"
        handler_before = signal.getsignal(signal.SIGTERM)
        assert main(["stream", str(capture), "--batch-size", "4096",
                     "--checkpoint-dir", str(ckpt),
                     "--checkpoint-every", "100"]) == 0
        err = capsys.readouterr().err
        assert "interrupted by SIGTERM" in err
        assert "resumable from" in err
        assert signal.getsignal(signal.SIGTERM) is handler_before

        monkeypatch.setattr(engine_mod.StreamEngine, "_refresh",
                            staticmethod(original))
        assert main(["stream", str(capture), "--batch-size", "4096",
                     "--checkpoint-dir", str(ckpt)]) == 0
        assert "resumed from checkpoint" in capsys.readouterr().err


class TestServeCommand:
    def test_rejects_zero_workers(self, capsys):
        assert main(["serve", "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err
