"""Tests for ecosystem summaries (Table 1 machinery) and the reporting layer."""

import numpy as np
import pytest

from repro.core.ecosystem import (
    GrowthReport,
    PortShare,
    common_tool_share,
    growth_report,
    summarize_period,
    top_ports_by_packets,
    top_ports_by_scans,
    top_ports_by_sources,
)
from repro.core.pipeline import EXCLUDED_STUDY_PORTS
from repro.core.ports_analysis import (
    port_pair_affinity,
    port_space_coverage,
    ports_per_source_summary,
    speed_ports_correlation,
    vertical_scan_counts,
)
from repro.core.volatility import volatility_summary
from repro.reporting import (
    figure2_volatility_cdfs,
    figure3_ports_per_ip,
    figure4_tool_mix_per_port,
    figure5_scanner_types_per_port,
    figure6_recurrence,
    figure7_speed_coverage,
    figure8_org_port_coverage,
    render_table1,
    render_table2,
)
from repro.core.classification import type_shares
from repro.scanners import Tool


class TestYearSummary:
    def test_summary_fields(self, analysis2020):
        summary = summarize_period(analysis2020)
        assert summary.year == 2020
        assert summary.packets_per_day > 0
        assert summary.scans_per_month > 0
        assert len(summary.top_ports_by_packets) == 5
        assert len(summary.top_ports_by_sources) == 5
        assert len(summary.top_ports_by_scans) == 5

    def test_top_ports_ranked(self, analysis2020):
        tops = top_ports_by_packets(analysis2020, k=5)
        shares = [p.share for p in tops]
        assert shares == sorted(shares, reverse=True)

    def test_excluded_ports_absent(self, analysis2020):
        for getter in (top_ports_by_packets, top_ports_by_sources,
                       top_ports_by_scans):
            ports = {p.port for p in getter(analysis2020, k=20)}
            assert not (ports & EXCLUDED_STUDY_PORTS)

    def test_port_share_str(self):
        assert str(PortShare(80, 0.123)) == "80 (12.3%)"

    def test_tool_shares_sum_to_one(self, analysis2020):
        summary = summarize_period(analysis2020)
        assert sum(summary.tool_shares_by_scans.values()) == pytest.approx(1.0)
        assert sum(summary.tool_shares_by_packets.values()) == pytest.approx(1.0)

    def test_common_tool_share_excludes_unknown(self, analysis2020):
        summary = summarize_period(analysis2020)
        share = common_tool_share(summary)
        assert 0 < share < 1
        assert share == pytest.approx(
            1.0 - summary.tool_shares_by_scans.get(Tool.UNKNOWN, 0.0)
        )


class TestGrowth:
    def _summary(self, year, ppd, spm):
        return summarize_period.__wrapped__ if False else None

    def test_growth_report(self, analysis2020):
        s = summarize_period(analysis2020)
        import dataclasses
        s2015 = dataclasses.replace(
            s, year=2015, packets_per_day=s.packets_per_day / 30,
            scans_per_month=s.scans_per_month / 39,
        )
        report = growth_report({2015: s2015, 2020: s})
        assert report.packet_growth == pytest.approx(30.0)
        assert report.scan_growth == pytest.approx(39.0)
        assert report.first_year == 2015 and report.last_year == 2020

    def test_growth_needs_two_years(self, analysis2020):
        with pytest.raises(ValueError):
            growth_report({2020: summarize_period(analysis2020)})


class TestPortsAnalysisOnSim:
    def test_ports_per_source(self, analysis2020):
        summary = ports_per_source_summary(analysis2020.study_batch)
        assert summary.sources > 1000
        # 2020 calibration: ~74% single-port sources.
        assert 0.6 < summary.fraction_single_port < 0.9

    def test_port_pair_affinity_80_8080(self, analysis2020):
        """§5.1: by 2020, ~87% of port-80 scans also cover 8080."""
        affinity = port_pair_affinity(analysis2020.study_scans, 80, 8080)
        assert affinity > 0.4

    def test_affinity_nan_when_absent(self, analysis2020):
        assert np.isnan(port_pair_affinity(analysis2020.study_scans, 64999, 65000))

    def test_port_space_coverage(self, analysis2020):
        cov = port_space_coverage(analysis2020)
        assert cov.probed_ports > 1000
        assert 0 < cov.probed_privileged <= 1023

    def test_port_space_validation(self, analysis2020):
        with pytest.raises(ValueError):
            port_space_coverage(analysis2020, noise_floor_fraction=1.0)

    def test_vertical_scan_counts_monotone(self, analysis2020):
        counts = vertical_scan_counts(analysis2020.study_scans)
        assert counts.total_scans == len(analysis2020.study_scans)
        assert counts.over_100_ports >= counts.over_1000_ports >= counts.over_10000_ports

    def test_vertical_fraction_validation(self, analysis2020):
        counts = vertical_scan_counts(analysis2020.study_scans)
        with pytest.raises(ValueError):
            counts.fraction_over(500)

    def test_speed_ports_correlation_positive(self, analysis2020):
        """§5.3: scan speed correlates positively with ports targeted."""
        r, p = speed_ports_correlation(analysis2020.study_scans)
        assert r > 0


class TestVolatilityOnSim:
    def test_summary_metrics_present(self, analysis2020):
        summary = volatility_summary(analysis2020)
        assert set(summary) == {"sources", "scans", "packets"}

    def test_substantial_weekly_change(self, analysis2020):
        """§4.4: a large share of /16s changes at least 2× week-over-week."""
        summary = volatility_summary(analysis2020)
        assert summary["sources"].fraction_at_least_2x > 0.3
        assert summary["packets"].pairs > 100

    def test_fractions_ordered(self, analysis2020):
        for s in volatility_summary(analysis2020).values():
            assert s.fraction_at_least_3x <= s.fraction_at_least_2x


class TestRenderers:
    def test_table1_renders(self, analysis2020):
        text = render_table1({2020: summarize_period(analysis2020)})
        assert "Packets/day" in text
        assert "masscan (by scans)" in text
        assert "2020" in text

    def test_table1_scale_note(self, analysis2020):
        text = render_table1({2020: summarize_period(analysis2020)},
                             scale_note="scaled by 1e-4")
        assert text.endswith("scaled by 1e-4")

    def test_table1_empty_rejected(self):
        with pytest.raises(ValueError):
            render_table1({})

    def test_table2_renders(self, analysis2020):
        text = render_table2(type_shares(analysis2020))
        assert "Institutional" in text
        assert "%" in text

    def test_table2_empty_rejected(self):
        with pytest.raises(ValueError):
            render_table2([])


class TestFigureSeries:
    def test_figure2(self, analysis2020):
        cdfs = figure2_volatility_cdfs(analysis2020)
        assert "scans" in cdfs

    def test_figure3(self, analysis2020):
        series = figure3_ports_per_ip({2020: analysis2020})
        xs, ps = series[2020]
        assert xs.size > 0 and ps[-1] == pytest.approx(1.0)

    def test_figure4(self, analysis2020):
        mix = figure4_tool_mix_per_port(analysis2020, top_n=5)
        assert len(mix) == 5
        for port, tools in mix.items():
            if tools:
                assert sum(tools.values()) == pytest.approx(1.0, abs=1e-6)

    def test_figure5(self, analysis2020):
        assert len(figure5_scanner_types_per_port(analysis2020, top_n=8)) == 8

    def test_figure6(self, analysis2020):
        recurrence = figure6_recurrence(analysis2020)
        assert recurrence

    def test_figure7(self, analysis2020):
        caps = figure7_speed_coverage(analysis2020)
        assert caps

    def test_figure8(self, analysis2020):
        rows = figure8_org_port_coverage(analysis2020)
        assert rows
        coverages = [r.coverage for r in rows]
        assert coverages == sorted(coverages, reverse=True)
