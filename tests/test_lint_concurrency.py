"""Tests for the concurrency pass (repro.lint.concurrency, RPR015-019).

Each rule gets a seeded-violation fixture plus a clean counterpart, the
two PR 9 bug classes are pinned as regression fixtures (blocking
``Future.cancel`` under the lock; done-callback reentry into a
non-reentrant lock), and the pass is exercised for worker-count
byte-identical diagnostics, suppression handling, the configurable
blocking-call blocklist, and the ``--explain`` catalog.
"""

import textwrap
from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_repository
from repro.lint.catalog import CATALOG, explain
from repro.lint.cli import main
from repro.lint.concurrency import (
    DEFAULT_BLOCKING_CALLS,
    FunctionConcurrency,
    concurrency_fingerprint,
    match_blocking,
)
from repro.lint.engine import REGISTRY

#: File rules are exercised by tests/test_lint.py; fixtures here disable
#: them so each assertion sees only the concurrency rule under test.
FILE_RULES = ["RPR001", "RPR002", "RPR003", "RPR004", "RPR005"]


def write_tree(root, files):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")


def run_project(tmp_path, files, **cfg_kwargs):
    write_tree(tmp_path, files)
    cfg_kwargs.setdefault("paths", ["pkg"])
    cfg_kwargs.setdefault("disable", FILE_RULES)
    cfg_kwargs.setdefault("dtype_layouts", [])
    config = LintConfig(root=tmp_path, **cfg_kwargs)
    diags, project, stats = lint_repository(config, use_cache=False)
    return diags, project, stats


def codes(diags):
    return [d.code for d in diags]


# ---------------------------------------------------------------------------
# RPR015: unguarded shared state
# ---------------------------------------------------------------------------


RPR015_FILES = {
    "pkg/__init__.py": "",
    "pkg/counter.py": """\
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.done = 0

            def bump(self):
                with self._lock:
                    self.done = self.done + 1

            def peek(self):
                return self.done
    """,
}


class TestUnguardedSharedState:
    def test_bare_read_of_guarded_attr_flagged(self, tmp_path):
        diags, _, _ = run_project(tmp_path, RPR015_FILES)
        assert codes(diags) == ["RPR015"]
        assert "'done'" in diags[0].message
        assert "_lock" in diags[0].message
        assert "peek" in diags[0].message

    def test_read_under_lock_clean(self, tmp_path):
        files = dict(RPR015_FILES)
        files["pkg/counter.py"] = textwrap.dedent(
            files["pkg/counter.py"]
        ).replace(
            "    def peek(self):\n        return self.done",
            "    def peek(self):\n"
            "        with self._lock:\n"
            "            return self.done",
        )
        diags, _, _ = run_project(tmp_path, files)
        assert diags == []

    def test_unguarded_write_from_thread_target_flagged(self, tmp_path):
        files = {
            "pkg/__init__.py": "",
            "pkg/worker.py": """\
                import threading

                class Worker:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.count = 0

                    def start(self):
                        thread = threading.Thread(target=self._run)
                        thread.start()

                    def _run(self):
                        self.count = self.count + 1

                    def total(self):
                        with self._lock:
                            return self.count
            """,
        }
        diags, _, _ = run_project(tmp_path, files)
        assert "RPR015" in codes(diags)
        assert any("thread entry" in d.message for d in diags)

    def test_init_phase_helper_not_flagged(self, tmp_path):
        # Eraser-style initialisation refinement: _restore is reachable
        # only from __init__, before the object is shared.
        files = {
            "pkg/__init__.py": "",
            "pkg/store.py": """\
                import threading

                class Store:
                    def __init__(self, items):
                        self._lock = threading.Lock()
                        self._items = {}
                        self._restore(items)

                    def _restore(self, items):
                        for key in items:
                            self._items[key] = True

                    def add(self, key):
                        with self._lock:
                            self._items[key] = True
            """,
        }
        diags, _, _ = run_project(tmp_path, files)
        assert diags == []


# ---------------------------------------------------------------------------
# RPR016: lock-order inversion
# ---------------------------------------------------------------------------


RPR016_FILES = {
    "pkg/__init__.py": "",
    "pkg/pair.py": """\
        import threading

        class Pair:
            def __init__(self):
                self._alpha = threading.Lock()
                self._beta = threading.Lock()

            def forward(self):
                with self._alpha:
                    with self._beta:
                        pass

            def backward(self):
                with self._beta:
                    with self._alpha:
                        pass
    """,
}


class TestLockOrderInversion:
    def test_opposite_nesting_orders_flagged(self, tmp_path):
        diags, _, _ = run_project(tmp_path, RPR016_FILES)
        assert codes(diags) == ["RPR016"]
        assert "_alpha" in diags[0].message
        assert "_beta" in diags[0].message
        assert "cycle" in diags[0].message

    def test_consistent_order_clean(self, tmp_path):
        files = dict(RPR016_FILES)
        files["pkg/pair.py"] = textwrap.dedent(files["pkg/pair.py"]).replace(
            "        with self._beta:\n            with self._alpha:",
            "        with self._alpha:\n            with self._beta:",
        )
        diags, _, _ = run_project(tmp_path, files)
        assert diags == []

    def test_reacquire_through_call_graph_flagged(self, tmp_path):
        files = {
            "pkg/__init__.py": "",
            "pkg/once.py": """\
                import threading

                class Once:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def outer(self):
                        with self._lock:
                            self.inner()

                    def inner(self):
                        with self._lock:
                            pass
            """,
        }
        diags, _, _ = run_project(tmp_path, files)
        assert codes(diags) == ["RPR016"]
        assert "re-acquired" in diags[0].message
        assert "Once.outer" in diags[0].message

    def test_rlock_reacquire_clean(self, tmp_path):
        files = {
            "pkg/__init__.py": "",
            "pkg/once.py": """\
                import threading

                class Once:
                    def __init__(self):
                        self._lock = threading.RLock()

                    def outer(self):
                        with self._lock:
                            self.inner()

                    def inner(self):
                        with self._lock:
                            pass
            """,
        }
        diags, _, _ = run_project(tmp_path, files)
        assert diags == []


# ---------------------------------------------------------------------------
# RPR017: blocking call under lock (the PR 9 cancel() bug class)
# ---------------------------------------------------------------------------


RPR017_FILES = {
    "pkg/__init__.py": "",
    "pkg/cancelq.py": """\
        import threading

        class CancelQueue:
            def __init__(self):
                self._lock = threading.Lock()
                self._futs = {}

            def cancel(self, key):
                with self._lock:
                    fut = self._futs.pop(key, None)
                    if fut is None:
                        return False
                    return fut.cancel()
    """,
}


class TestBlockingCallUnderLock:
    def test_future_cancel_under_lock_flagged(self, tmp_path):
        # Regression fixture for the PR 9 bug: Future.cancel() runs done
        # callbacks synchronously and blocked with the queue lock held.
        diags, _, _ = run_project(tmp_path, RPR017_FILES)
        assert codes(diags) == ["RPR017"]
        assert "fut.cancel()" in diags[0].message
        assert "*.cancel" in diags[0].message
        assert "_lock" in diags[0].message

    def test_cancel_outside_lock_clean(self, tmp_path):
        files = {
            "pkg/__init__.py": "",
            "pkg/cancelq.py": """\
                import threading

                class CancelQueue:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._futs = {}

                    def cancel(self, key):
                        with self._lock:
                            fut = self._futs.pop(key, None)
                        if fut is None:
                            return False
                        return fut.cancel()
            """,
        }
        diags, _, _ = run_project(tmp_path, files)
        assert diags == []

    def test_blocking_call_reached_through_helper_flagged(self, tmp_path):
        # The lock flows into the helper's entry lockset via the call
        # graph (`*_locked` helper convention); the helper's own call
        # site is the one flagged, with the caller chain in the message.
        files = {
            "pkg/__init__.py": "",
            "pkg/sleeper.py": """\
                import threading
                import time

                class Sleeper:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def tick(self):
                        with self._lock:
                            self._pause_locked()

                    def _pause_locked(self):
                        time.sleep(0.1)
            """,
        }
        diags, _, _ = run_project(tmp_path, files)
        assert codes(diags) == ["RPR017"]
        assert "time.sleep" in diags[0].message
        assert "held on entry" in diags[0].message
        assert "Sleeper.tick" in diags[0].message

    def test_suppression_with_invariant_silences(self, tmp_path):
        files = dict(RPR017_FILES)
        files["pkg/cancelq.py"] = files["pkg/cancelq.py"].replace(
            "return fut.cancel()",
            "return fut.cancel()  # repro-lint: disable=RPR017  # settled",
        )
        diags, _, _ = run_project(tmp_path, files)
        assert diags == []

    def test_blocklist_is_configurable(self, tmp_path):
        files = {
            "pkg/__init__.py": "",
            "pkg/custom.py": """\
                import threading

                class Custom:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def poke(self, conn):
                        with self._lock:
                            conn.frobnicate()
            """,
        }
        diags, _, _ = run_project(tmp_path, files)
        assert diags == []
        diags, _, _ = run_project(
            tmp_path, files, blocking_calls=["*.frobnicate"]
        )
        assert codes(diags) == ["RPR017"]
        assert "*.frobnicate" in diags[0].message

    def test_project_method_named_like_blocking_leaf_clean(self, tmp_path):
        # `*.cancel` must not match a call resolved to a project method
        # that merely shares the leaf name.
        files = {
            "pkg/__init__.py": "",
            "pkg/ownq.py": """\
                import threading

                class OwnQueue:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.tally = 0

                    def drop(self):
                        with self._lock:
                            self.cancel()

                    def cancel(self):
                        self.tally = self.tally + 1
            """,
        }
        diags, _, _ = run_project(tmp_path, files)
        assert "RPR017" not in codes(diags)


# ---------------------------------------------------------------------------
# RPR018: callback reentrancy (the other PR 9 bug class)
# ---------------------------------------------------------------------------


RPR018_FILES = {
    "pkg/__init__.py": "",
    "pkg/reenter.py": """\
        import threading

        class ReenterQueue:
            def __init__(self, pool):
                self._lock = threading.Lock()
                self._pool = pool
                self.done = 0

            def start(self, payload):
                with self._lock:
                    fut = self._pool.submit(run_job, payload)
                    fut.add_done_callback(self._on_done)
                    return fut

            def _on_done(self, fut):
                with self._lock:
                    self.done = self.done + 1

        def run_job(payload):
            return payload
    """,
}


class TestCallbackReentrancy:
    def test_done_callback_reentry_into_plain_lock_flagged(self, tmp_path):
        # Regression fixture for the PR 9 bug: a settled Future runs its
        # done callbacks synchronously inside add_done_callback, so the
        # callback re-acquiring the held non-reentrant lock deadlocks.
        diags, _, _ = run_project(tmp_path, RPR018_FILES)
        assert codes(diags) == ["RPR018"]
        assert "_on_done" in diags[0].message
        assert "synchronously" in diags[0].message
        assert "RLock" in diags[0].message

    def test_rlock_makes_reentry_safe(self, tmp_path):
        files = dict(RPR018_FILES)
        files["pkg/reenter.py"] = files["pkg/reenter.py"].replace(
            "threading.Lock()", "threading.RLock()"
        )
        diags, _, _ = run_project(tmp_path, files)
        assert diags == []

    def test_registration_outside_lock_clean(self, tmp_path):
        files = dict(RPR018_FILES)
        files["pkg/reenter.py"] = textwrap.dedent(
            files["pkg/reenter.py"]
        ).replace(
            """\
    def start(self, payload):
        with self._lock:
            fut = self._pool.submit(run_job, payload)
            fut.add_done_callback(self._on_done)
            return fut
""",
            """\
    def start(self, payload):
        with self._lock:
            fut = self._pool.submit(run_job, payload)
        fut.add_done_callback(self._on_done)
        return fut
""",
        )
        diags, _, _ = run_project(tmp_path, files)
        assert diags == []


# ---------------------------------------------------------------------------
# RPR019: atomicity split
# ---------------------------------------------------------------------------


RPR019_FILES = {
    "pkg/__init__.py": "",
    "pkg/budget.py": """\
        import threading

        class Budget:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0

            def bump(self, limit):
                with self._lock:
                    n = self.count
                if n >= limit:
                    return False
                with self._lock:
                    self.count = n + 1
                return True
    """,
}


class TestAtomicitySplit:
    def test_check_then_act_across_scopes_flagged(self, tmp_path):
        diags, _, _ = run_project(tmp_path, RPR019_FILES)
        assert codes(diags) == ["RPR019"]
        assert "'count'" in diags[0].message
        assert "separate acquisition" in diags[0].message

    def test_single_scope_clean(self, tmp_path):
        files = {
            "pkg/__init__.py": "",
            "pkg/budget.py": """\
                import threading

                class Budget:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.count = 0

                    def bump(self, limit):
                        with self._lock:
                            if self.count >= limit:
                                return False
                            self.count = self.count + 1
                        return True
            """,
        }
        diags, _, _ = run_project(tmp_path, files)
        assert diags == []

    def test_revalidating_read_in_second_scope_clean(self, tmp_path):
        files = dict(RPR019_FILES)
        files["pkg/budget.py"] = textwrap.dedent(
            files["pkg/budget.py"]
        ).replace(
            "        with self._lock:\n"
            "            self.count = n + 1\n",
            "        with self._lock:\n"
            "            if self.count != n:\n"
            "                return False\n"
            "            self.count = n + 1\n",
        )
        diags, _, _ = run_project(tmp_path, files)
        assert diags == []


# ---------------------------------------------------------------------------
# determinism, serialisation, config plumbing
# ---------------------------------------------------------------------------


ALL_FIXTURES = {}
for fixture in (RPR015_FILES, RPR016_FILES, RPR017_FILES, RPR018_FILES,
                RPR019_FILES):
    ALL_FIXTURES.update(fixture)


class TestDeterminism:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_diagnostics_identical_at_any_worker_count(
        self, tmp_path, workers
    ):
        write_tree(tmp_path, ALL_FIXTURES)
        config = LintConfig(
            root=tmp_path, paths=["pkg"], disable=FILE_RULES,
            dtype_layouts=[],
        )
        serial, _, _ = lint_repository(config, workers=0, use_cache=False)
        parallel, _, _ = lint_repository(
            config, workers=workers, use_cache=False
        )
        assert sorted(codes(serial)) == [
            "RPR015", "RPR016", "RPR017", "RPR018", "RPR019",
        ]
        assert parallel == serial

    def test_warm_cache_reproduces_findings(self, tmp_path):
        write_tree(tmp_path, ALL_FIXTURES)
        cache_dir = tmp_path / ".cache"
        config = LintConfig(
            root=tmp_path, paths=["pkg"], disable=FILE_RULES,
            dtype_layouts=[],
        )
        cold, _, stats_cold = lint_repository(
            config, workers=0, cache_dir=cache_dir, use_cache=True
        )
        warm, _, stats_warm = lint_repository(
            config, workers=0, cache_dir=cache_dir, use_cache=True
        )
        assert warm == cold
        assert stats_warm.cache_hits == stats_cold.files

    def test_fingerprint_is_stable(self):
        assert concurrency_fingerprint() == concurrency_fingerprint()

    def test_function_concurrency_roundtrips(self):
        conc = FunctionConcurrency(events=[
            {"k": "acquire", "lineno": 3, "col": 4, "held": [],
             "deferred": False, "lock": "pkg.m.C._lock", "scope": "3:9"},
        ])
        assert FunctionConcurrency.from_dict(conc.to_dict()) == conc

    def test_select_scopes_to_one_rule(self, tmp_path):
        diags, _, _ = run_project(tmp_path, ALL_FIXTURES, select=["RPR017"])
        assert sorted(codes(diags)) == ["RPR017"]


class TestBlockingMatch:
    def test_exact_name_matches_resolved_callee(self):
        event = {"callee": "time.sleep", "leaf": "sleep", "recv": "name"}
        assert match_blocking(
            event, DEFAULT_BLOCKING_CALLS, frozenset()
        ) == "time.sleep"

    def test_leaf_pattern_skips_const_receiver(self):
        # ", ".join(...) must not match a hypothetical *.join blocklist
        # entry aimed at Thread.join.
        event = {"callee": None, "leaf": "join", "recv": "const"}
        assert match_blocking(event, DEFAULT_BLOCKING_CALLS, frozenset()) is None

    def test_leaf_pattern_skips_project_callee(self):
        event = {"callee": "pkg.m.Q.cancel", "leaf": "cancel", "recv": "self"}
        assert match_blocking(
            event, DEFAULT_BLOCKING_CALLS, frozenset(["pkg.m.Q.cancel"])
        ) is None


# ---------------------------------------------------------------------------
# catalog / --explain
# ---------------------------------------------------------------------------


class TestCatalog:
    def test_catalog_covers_exactly_the_registered_rules(self):
        assert sorted(CATALOG) == sorted(r.code for r in REGISTRY.rules())

    def test_every_entry_has_summary_and_example(self):
        for code, doc in CATALOG.items():
            assert doc.summary.strip(), code
            assert doc.example.strip(), code

    def test_explain_renders_code_name_and_example(self):
        text = explain("RPR018")
        assert text is not None
        assert text.startswith("RPR018")
        assert "callback-reentrancy" in text
        assert "Example:" in text

    def test_explain_unknown_code_is_none(self):
        assert explain("RPR999") is None

    def test_cli_explain_prints_entry(self, capsys):
        assert main(["--explain", "RPR015,RPR019"]) == 0
        out = capsys.readouterr().out
        assert "RPR015" in out
        assert "RPR019" in out

    def test_cli_explain_rejects_unknown_code(self, capsys):
        assert main(["--explain", "RPR999"]) == 2
        assert "unknown rule code" in capsys.readouterr().err
