"""Unit tests for the synthetic service world (§5.1's vertical scan)."""

import numpy as np
import pytest

from repro.core.ports_analysis import service_density_correlation
from repro.simulation.services import (
    DEFAULT_SERVICE_PREVALENCE,
    ServiceWorld,
    vertical_scan,
)


class TestServiceWorld:
    def test_default_buildable(self):
        world = ServiceWorld.default()
        assert world.prevalence == DEFAULT_SERVICE_PREVALENCE

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceWorld(prevalence={}, reachable_fraction=0.1)
        with pytest.raises(ValueError):
            ServiceWorld(prevalence={80: 1.0}, reachable_fraction=1.5)
        with pytest.raises(ValueError):
            ServiceWorld(prevalence={80: 1.0}, host_service_rate=0)

    def test_sample_open_ports_shapes(self, rng):
        world = ServiceWorld.default()
        sets = world.sample_open_ports(rng, 200)
        assert len(sets) == 200
        for ports in sets:
            assert np.all(np.diff(ports) > 0)  # sorted, distinct

    def test_reachable_fraction_respected(self, rng):
        world = ServiceWorld(prevalence={80: 1.0}, reachable_fraction=0.0)
        sets = world.sample_open_ports(rng, 50)
        assert all(p.size == 0 for p in sets)

    def test_popular_ports_dominate(self, rng):
        result = vertical_scan(ServiceWorld.default(), n_hosts=20_000, rng=rng)
        density = result.density()
        assert density.get(443, 0) > density.get(5060, 0)
        assert density.get(80, 0) > density.get(1723, 0)

    def test_vertical_scan_validation(self):
        with pytest.raises(ValueError):
            vertical_scan(ServiceWorld.default(), n_hosts=0)

    def test_density_normalised(self, rng):
        result = vertical_scan(ServiceWorld.default(), n_hosts=5_000, rng=rng)
        assert all(0 <= v <= 1 for v in result.density().values())


class TestNonCorrelationFinding:
    def test_scan_intensity_uncorrelated_with_services(self, analysis2020, rng):
        """§5.1: no relation between open services and scan intensity.

        The simulated scan targeting is drawn independently of the service
        world, so the recovered correlation must be near zero — the paper
        reports R = 0.047.
        """
        result = vertical_scan(ServiceWorld.default(), n_hosts=50_000, rng=rng)
        r, p = service_density_correlation(
            analysis2020.study_scans, result.density()
        )
        assert abs(r) < 0.25
