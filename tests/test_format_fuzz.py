"""Fuzz the binary parsers: arbitrary bytes must raise the format error (or
yield nothing), never crash with an unrelated exception."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.telescope.pcap import PcapFormatError, iter_pcap
from repro.telescope.trace import MAGIC, TraceFormatError, TraceReader


class TestTraceFuzz:
    @given(data=st.binary(min_size=0, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_random_bytes(self, tmp_path_factory, data):
        path = tmp_path_factory.mktemp("fuzz") / "t.rtrace"
        path.write_bytes(data)
        try:
            with TraceReader(path) as reader:
                for _ in reader:
                    pass
        except TraceFormatError:
            pass  # the contract: malformed input fails loudly and typed
        except Exception as exc:  # pragma: no cover - the failure we hunt
            pytest.fail(f"unexpected {type(exc).__name__}: {exc}")

    @given(body=st.binary(min_size=0, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_valid_magic_random_body(self, tmp_path_factory, body):
        path = tmp_path_factory.mktemp("fuzz") / "t.rtrace"
        path.write_bytes(MAGIC + body)
        try:
            with TraceReader(path) as reader:
                for _ in reader:
                    pass
        except (TraceFormatError, ValueError):
            # json metadata may also fail to parse: either typed error is fine.
            pass
        except Exception as exc:  # pragma: no cover
            pytest.fail(f"unexpected {type(exc).__name__}: {exc}")


class TestPcapFuzz:
    @given(data=st.binary(min_size=0, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_random_bytes(self, tmp_path_factory, data):
        path = tmp_path_factory.mktemp("fuzz") / "t.pcap"
        path.write_bytes(data)
        try:
            list(iter_pcap(path))
        except PcapFormatError:
            pass
        except Exception as exc:  # pragma: no cover
            pytest.fail(f"unexpected {type(exc).__name__}: {exc}")

    @given(body=st.binary(min_size=0, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_valid_header_random_frames(self, tmp_path_factory, body):
        import struct
        header = struct.pack("<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 1)
        path = tmp_path_factory.mktemp("fuzz") / "t.pcap"
        path.write_bytes(header + body)
        try:
            list(iter_pcap(path))
        except PcapFormatError:
            pass
        except Exception as exc:  # pragma: no cover
            pytest.fail(f"unexpected {type(exc).__name__}: {exc}")
