"""Tests for cross-subnet distributed-campaign detection and the per-scan
intensity report."""

import numpy as np
import pytest

from repro.core.campaigns import ScanTable
from repro.core.collaboration import detect_distributed_campaigns
from repro.core.trends import scan_intensity
from repro.scanners import Tool


def table(rows):
    """rows: (src_ip, start, end, tool, ports, window, ttl)."""
    n = len(rows)
    return ScanTable(
        src_ip=np.array([r[0] for r in rows], dtype=np.uint32),
        start=np.array([r[1] for r in rows], dtype=float),
        end=np.array([r[2] for r in rows], dtype=float),
        packets=np.full(n, 200, dtype=np.int64),
        distinct_dsts=np.full(n, 150, dtype=np.int64),
        port_sets=[np.array(sorted(r[4]), dtype=np.int64) for r in rows],
        primary_port=np.array([sorted(r[4])[0] for r in rows], dtype=np.uint16),
        tool=np.array([r[3] for r in rows], dtype=object),
        match_fraction=np.ones(n),
        speed_pps=np.full(n, 500.0),
        coverage=np.full(n, 0.004),
        window_mode=np.array([r[5] for r in rows], dtype=np.uint16),
        ttl_mode=np.array([r[6] for r in rows], dtype=np.uint8),
    )


def spread_sources(k, stride=1 << 16):
    """k sources in k different /24s (actually different /16s)."""
    return [0x0B000000 + i * stride for i in range(k)]


class TestDistributedDetection:
    def test_common_header_pattern_clusters(self):
        rows = [(ip, 100.0, 5000.0, Tool.UNKNOWN, [5555], 29200, 50)
                for ip in spread_sources(6)]
        clusters = detect_distributed_campaigns(table(rows))
        assert len(clusters) == 1
        assert clusters[0].subnets == 6
        assert clusters[0].window_mode == 29200
        assert clusters[0].total_coverage == pytest.approx(0.024)

    def test_different_windows_split(self):
        rows = [(ip, 100.0, 5000.0, Tool.UNKNOWN, [5555], 29200, 50)
                for ip in spread_sources(3)]
        rows += [(ip, 100.0, 5000.0, Tool.UNKNOWN, [5555], 64240, 50)
                 for ip in spread_sources(3, stride=1 << 20)]
        clusters = detect_distributed_campaigns(table(rows), min_sources=3,
                                                min_subnets=3)
        assert len(clusters) == 2
        windows = {c.window_mode for c in clusters}
        assert windows == {29200, 64240}

    def test_ttl_band_tolerates_path_variation(self):
        # TTLs 48..55 sit in one 16-wide band; 20 does not.
        rows = [(ip, 100.0, 5000.0, Tool.UNKNOWN, [443], 1024, 48 + i)
                for i, ip in enumerate(spread_sources(5))]
        rows.append((0x0F000000, 100.0, 5000.0, Tool.UNKNOWN, [443], 1024, 20))
        clusters = detect_distributed_campaigns(table(rows), min_sources=4)
        assert len(clusters) == 1
        assert len(clusters[0].sources) == 5

    def test_min_subnets_enforced(self):
        # Six sources but all in one /24: shard merging's job, not this one.
        rows = [(0x0B000000 + i, 100.0, 5000.0, Tool.UNKNOWN, [5555], 1024, 50)
                for i in range(6)]
        assert detect_distributed_campaigns(table(rows)) == []

    def test_time_gap_splits(self):
        early = [(ip, 0.0, 1000.0, Tool.UNKNOWN, [5555], 1024, 50)
                 for ip in spread_sources(4)]
        late = [(ip, 20 * 86400.0, 20 * 86400.0 + 1000.0, Tool.UNKNOWN,
                 [5555], 1024, 50) for ip in spread_sources(4, stride=1 << 18)]
        clusters = detect_distributed_campaigns(table(early + late))
        assert len(clusters) == 2

    def test_randomised_windows_do_not_cluster(self):
        gen = np.random.default_rng(0)
        rows = [(ip, 100.0, 5000.0, Tool.MIRAI, [2323],
                 int(gen.integers(1024, 65535)), 50)
                for ip in spread_sources(8)]
        assert detect_distributed_campaigns(table(rows)) == []

    def test_empty_and_validation(self):
        assert detect_distributed_campaigns(ScanTable.empty()) == []
        with pytest.raises(ValueError):
            detect_distributed_campaigns(ScanTable.empty(), min_sources=1)

    def test_on_simulation_custom_tool_clusters(self, analysis2020):
        """The custom tool's fixed Linux window (29200) across many
        independent sources is exactly the false-positive surface the
        min_subnets/time constraints must keep in check; any clusters found
        must genuinely share all pattern fields."""
        clusters = detect_distributed_campaigns(analysis2020.study_scans)
        scans = analysis2020.study_scans
        for cluster in clusters:
            for i in cluster.scan_indices:
                assert int(scans.window_mode[i]) == cluster.window_mode
                assert str(scans.tool[i]) == cluster.tool.value


class TestScanIntensity:
    def test_report_values(self):
        rows = [(0x0B000000 + i, 0.0, 100.0 * (i + 1), Tool.UNKNOWN,
                 [80], 1024, 50) for i in range(4)]
        report = scan_intensity(table(rows))
        assert report.scans == 4
        assert report.median_packets == 200
        assert report.mean_duration_s == pytest.approx(250.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            scan_intensity(ScanTable.empty())

    def test_intensity_arc_over_decade(self, analysis2020):
        report = scan_intensity(analysis2020.study_scans)
        assert report.mean_packets > report.median_packets  # heavy tail
