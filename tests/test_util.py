"""Unit tests for repro._util (rng, validation, stats, formatting)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro._util import (
    as_generator,
    check_fraction,
    check_header_field,
    check_ip,
    check_non_negative,
    check_port,
    check_positive,
    check_range,
    check_ttl,
    derive_rng,
    empirical_cdf,
    format_count,
    format_percent,
    format_rate_bps,
    format_table,
    fraction_at_most,
    pearson_r,
    quantiles,
    spawn_rngs,
    weighted_choice_indices,
)
from repro._util.rng import uniform_order_statistics
from repro._util.stats import gini_coefficient, ks_two_sample


class TestRng:
    def test_none_is_deterministic(self):
        a = as_generator(None).integers(0, 1000, 10)
        b = as_generator(None).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_int_seed_deterministic(self):
        assert np.array_equal(
            as_generator(5).integers(0, 1000, 10),
            as_generator(5).integers(0, 1000, 10),
        )

    def test_different_seeds_differ(self):
        assert not np.array_equal(
            as_generator(1).integers(0, 1000, 10),
            as_generator(2).integers(0, 1000, 10),
        )

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            as_generator("seed")

    def test_spawn_rngs_independent(self):
        a, b = spawn_rngs(0, 2)
        assert not np.array_equal(a.integers(0, 1000, 10), b.integers(0, 1000, 10))

    def test_spawn_rngs_count(self):
        assert len(spawn_rngs(0, 7)) == 7

    def test_spawn_rngs_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_order_statistics_sorted(self):
        t = uniform_order_statistics(np.random.default_rng(0), 100, 5.0, 10.0)
        assert np.all(np.diff(t) >= 0)
        assert t.min() >= 5.0 and t.max() < 10.0

    def test_order_statistics_empty(self):
        assert uniform_order_statistics(np.random.default_rng(0), 0, 0, 1).size == 0

    def test_order_statistics_bad_range(self):
        with pytest.raises(ValueError):
            uniform_order_statistics(np.random.default_rng(0), 5, 10.0, 5.0)


class TestDeriveRng:
    """Regression tests for the SeedSequence-based stream derivation.

    The documented property: same (state, tokens) -> same stream, no matter
    how many other streams were derived in between, and without consuming
    draws from a seed-visible base generator.
    """

    def test_stable_under_interleaving(self):
        a = derive_rng(7, "campaign", 3).integers(0, 10**6, 8)
        derive_rng(7, "unrelated")  # must not perturb the "campaign" stream
        derive_rng(7, "campaign", 4)
        b = derive_rng(7, "campaign", 3).integers(0, 10**6, 8)
        assert np.array_equal(a, b)

    def test_distinct_tokens_distinct_streams(self):
        a = derive_rng(7, "x").integers(0, 10**6, 8)
        b = derive_rng(7, "y").integers(0, 10**6, 8)
        assert not np.array_equal(a, b)

    def test_token_concatenation_is_not_ambiguous(self):
        a = derive_rng(1, "ab").integers(0, 10**6, 8)
        b = derive_rng(1, "a", "b").integers(0, 10**6, 8)
        assert not np.array_equal(a, b)

    def test_none_state_is_deterministic(self):
        assert np.array_equal(
            derive_rng(None, "t").integers(0, 10**6, 8),
            derive_rng(None, "t").integers(0, 10**6, 8),
        )

    def test_list_entropy_generator_supported(self):
        # Pre-fix, SeedSequence list entropy raised (int(list)) or was
        # silently collapsed to 0, merging streams of different bases.
        a = derive_rng(np.random.default_rng([1, 2, 3]), "t").integers(0, 10**6, 8)
        b = derive_rng(np.random.default_rng([1, 2, 3]), "t").integers(0, 10**6, 8)
        c = derive_rng(np.random.default_rng([4, 5]), "t").integers(0, 10**6, 8)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_spawned_child_distinct_from_parent(self):
        child_seq = np.random.SeedSequence(7).spawn(1)[0]
        child = derive_rng(np.random.default_rng(child_seq), "t")
        parent = derive_rng(np.random.default_rng(7), "t")
        assert not np.array_equal(
            child.integers(0, 10**6, 8), parent.integers(0, 10**6, 8)
        )

    def test_does_not_consume_base_draws(self):
        gen = np.random.default_rng(123)
        untouched = np.random.default_rng(123)
        derive_rng(gen, "a")
        derive_rng(gen, "b")
        assert np.array_equal(
            gen.integers(0, 10**6, 8), untouched.integers(0, 10**6, 8)
        )

    def test_generator_state_matches_int_seed(self):
        assert np.array_equal(
            derive_rng(np.random.default_rng(9), "t").integers(0, 10**6, 8),
            derive_rng(9, "t").integers(0, 10**6, 8),
        )

    def test_rejects_bad_state(self):
        with pytest.raises(TypeError):
            derive_rng("seed", "t")


class TestValidate:
    def test_check_positive_accepts(self):
        assert check_positive("x", 0.5) == 0.5

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive("x", 0)

    def test_check_positive_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive("x", True)

    def test_check_non_negative(self):
        assert check_non_negative("x", 0) == 0
        with pytest.raises(ValueError):
            check_non_negative("x", -1)

    def test_check_fraction_bounds(self):
        assert check_fraction("x", 0.0) == 0.0
        assert check_fraction("x", 1.0) == 1.0
        with pytest.raises(ValueError):
            check_fraction("x", 1.01)

    def test_check_range(self):
        assert check_range("x", 5, low=0, high=10) == 5
        with pytest.raises(ValueError):
            check_range("x", -1, low=0)
        with pytest.raises(ValueError):
            check_range("x", 11, high=10)

    def test_check_port(self):
        assert check_port("p", 65535) == 65535
        with pytest.raises(ValueError):
            check_port("p", 65536)
        with pytest.raises(TypeError):
            check_port("p", 1.5)

    def test_check_ttl(self):
        assert check_ttl("ttl", 0) == 0
        assert check_ttl("ttl", 255) == 255
        with pytest.raises(ValueError):
            check_ttl("ttl", 256)
        with pytest.raises(ValueError):
            check_ttl("ttl", -1)

    def test_check_ip(self):
        assert check_ip("ip", 2**32 - 1) == 2**32 - 1
        with pytest.raises(ValueError):
            check_ip("ip", 2**32)
        with pytest.raises(TypeError):
            check_ip("ip", "10.0.0.1")

    def test_check_header_field_generic(self):
        assert check_header_field("seq", 2**32 - 1, 32) == 2**32 - 1
        with pytest.raises(ValueError):
            check_header_field("seq", 2**32, 32)
        with pytest.raises(TypeError):
            check_header_field("f", 1.0, 8)
        with pytest.raises(TypeError):
            check_header_field("f", True, 8)

    def test_check_header_field_numpy_int_accepted(self):
        assert check_header_field("ttl", np.uint8(64), 8) == 64

    def test_check_header_field_bad_bits(self):
        with pytest.raises(ValueError):
            check_header_field("f", 1, 0)
        with pytest.raises(ValueError):
            check_header_field("f", 1, -8)


class TestStats:
    def test_empirical_cdf_basic(self):
        xs, ps = empirical_cdf([1, 2, 2, 3])
        assert xs.tolist() == [1, 2, 3]
        assert ps.tolist() == [0.25, 0.75, 1.0]

    def test_empirical_cdf_empty(self):
        xs, ps = empirical_cdf([])
        assert xs.size == 0 and ps.size == 0

    def test_fraction_at_most(self):
        assert fraction_at_most([1, 2, 3, 4], 2) == 0.5
        assert fraction_at_most([], 2) == 0.0

    def test_quantiles(self):
        q = quantiles(range(101), [0.5])
        assert q[0] == 50

    def test_quantiles_empty_raises(self):
        with pytest.raises(ValueError):
            quantiles([], [0.5])

    def test_pearson_r_perfect(self):
        r, p = pearson_r([1, 2, 3, 4], [2, 4, 6, 8])
        assert r == pytest.approx(1.0)
        assert p < 0.05

    def test_pearson_r_constant_is_nan(self):
        r, p = pearson_r([1, 1, 1], [1, 2, 3])
        assert np.isnan(r) and p == 1.0

    def test_pearson_r_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson_r([1, 2], [1, 2, 3])

    def test_ks_two_sample_same_distribution(self):
        gen = np.random.default_rng(0)
        a, b = gen.normal(size=500), gen.normal(size=500)
        stat, p = ks_two_sample(a, b)
        assert p > 0.01

    def test_ks_two_sample_different(self):
        gen = np.random.default_rng(0)
        stat, p = ks_two_sample(gen.normal(size=500), gen.normal(5, 1, size=500))
        assert p < 1e-6

    def test_ks_empty_raises(self):
        with pytest.raises(ValueError):
            ks_two_sample([], [1.0])

    def test_weighted_choice_distribution(self):
        gen = np.random.default_rng(0)
        idx = weighted_choice_indices(gen, [1.0, 9.0], 10_000)
        assert 0.85 < np.mean(idx == 1) < 0.95

    def test_weighted_choice_rejects_negative(self):
        with pytest.raises(ValueError):
            weighted_choice_indices(np.random.default_rng(0), [-1, 1], 5)

    def test_weighted_choice_rejects_zero_sum(self):
        with pytest.raises(ValueError):
            weighted_choice_indices(np.random.default_rng(0), [0, 0], 5)

    def test_gini_uniform_is_zero(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0, abs=1e-9)

    def test_gini_concentrated_is_high(self):
        assert gini_coefficient([0, 0, 0, 100]) > 0.7

    def test_gini_rejects_negative(self):
        with pytest.raises(ValueError):
            gini_coefficient([-1, 2])

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    def test_gini_bounded(self, values):
        g = gini_coefficient(values)
        assert -1e-9 <= g <= 1.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=100))
    def test_cdf_monotone_and_bounded(self, values):
        xs, ps = empirical_cdf(values)
        assert np.all(np.diff(ps) >= -1e-12)
        assert ps[-1] == pytest.approx(1.0)
        assert np.all(np.diff(xs) > 0)


class TestFmt:
    def test_format_count_millions(self):
        assert format_count(11e6) == "11 million"

    def test_format_count_thousands(self):
        assert format_count(33e3) == "33 K"

    def test_format_count_small_million(self):
        assert format_count(1.3e6) == "1.3 M"

    def test_format_count_units(self):
        assert format_count(42) == "42"

    def test_format_percent(self):
        assert format_percent(0.153) == "15.3%"
        assert format_percent(0.0004, 2) == "0.04%"

    def test_format_rate(self):
        assert format_rate_bps(14e6) == "14.0 Mbps"
        assert format_rate_bps(1.3e9) == "1.3 Gbps"
        assert format_rate_bps(500) == "500.0 bps"

    def test_format_table_alignment(self):
        out = format_table(["a", "b"], [["x", 1], ["yy", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0].rstrip()) or True for l in lines)

    def test_format_table_rejects_ragged(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])
