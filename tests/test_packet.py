"""Unit tests for SynPacket and the PacketBatch column store."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.telescope.packet import (
    FLAG_ACK,
    FLAG_RST,
    FLAG_SYN,
    PacketBatch,
    SynPacket,
)


def make_packets(n=10, t0=0.0):
    return [
        SynPacket(time=t0 + i, src_ip=100 + i % 3, dst_ip=200 + i,
                  src_port=4000 + i, dst_port=80, ip_id=i, seq=1000 + i)
        for i in range(n)
    ]


class TestSynPacket:
    def test_defaults(self):
        p = SynPacket(time=0.0, src_ip=1, dst_ip=2, src_port=3, dst_port=4)
        assert p.flags == FLAG_SYN
        assert p.is_syn_only and not p.is_backscatter

    def test_backscatter_flags(self):
        synack = SynPacket(time=0, src_ip=1, dst_ip=2, src_port=3, dst_port=4,
                           flags=FLAG_SYN | FLAG_ACK)
        rst = SynPacket(time=0, src_ip=1, dst_ip=2, src_port=3, dst_port=4,
                        flags=FLAG_RST)
        assert synack.is_backscatter and rst.is_backscatter
        assert not synack.is_syn_only

    @pytest.mark.parametrize("field,value", [
        ("src_ip", 2**32), ("dst_ip", -1), ("src_port", 70000),
        ("dst_port", -1), ("ip_id", 2**16), ("seq", 2**32),
        ("ttl", 256), ("window", 2**16), ("flags", 256),
    ])
    def test_out_of_range_rejected(self, field, value):
        kwargs = dict(time=0.0, src_ip=1, dst_ip=2, src_port=3, dst_port=4)
        kwargs[field] = value
        with pytest.raises(ValueError):
            SynPacket(**kwargs)

    def test_describe_contains_ips(self):
        p = SynPacket(time=1.5, src_ip=0x01020304, dst_ip=0x05060708,
                      src_port=1234, dst_port=80)
        text = p.describe()
        assert "1.2.3.4" in text and "5.6.7.8" in text


class TestPacketBatchConstruction:
    def test_from_packets_roundtrip(self):
        pkts = make_packets(5)
        batch = PacketBatch.from_packets(pkts)
        assert len(batch) == 5
        assert list(batch) == pkts

    def test_empty(self):
        b = PacketBatch.empty()
        assert len(b) == 0
        assert b.distinct_sources() == 0

    def test_concat(self):
        a = PacketBatch.from_packets(make_packets(3))
        b = PacketBatch.from_packets(make_packets(2, t0=100))
        c = PacketBatch.concat([a, b])
        assert len(c) == 5

    def test_concat_empty_list(self):
        assert len(PacketBatch.concat([])) == 0

    def test_missing_column_rejected(self):
        cols = PacketBatch.from_packets(make_packets(2)).columns()
        cols.pop("seq")
        with pytest.raises(ValueError):
            PacketBatch(**cols)

    def test_misaligned_column_rejected(self):
        cols = PacketBatch.from_packets(make_packets(2)).columns()
        cols["seq"] = cols["seq"][:1]
        with pytest.raises(ValueError):
            PacketBatch(**cols)

    def test_unknown_column_rejected(self):
        cols = PacketBatch.from_packets(make_packets(2)).columns()
        cols["bogus"] = cols["seq"]
        with pytest.raises(ValueError):
            PacketBatch(**cols)


class TestPacketBatchOps:
    def test_slice(self):
        b = PacketBatch.from_packets(make_packets(10))
        assert len(b[2:5]) == 3

    def test_integer_index_rejected(self):
        b = PacketBatch.from_packets(make_packets(3))
        with pytest.raises(TypeError):
            b[0]

    def test_packet_accessor(self):
        pkts = make_packets(3)
        b = PacketBatch.from_packets(pkts)
        assert b.packet(1) == pkts[1]

    def test_sorted_by_time(self):
        pkts = make_packets(5)[::-1]
        b = PacketBatch.from_packets(pkts).sorted_by_time()
        assert np.all(np.diff(b.time) >= 0)

    def test_where_mask(self):
        b = PacketBatch.from_packets(make_packets(10))
        out = b.where(b.src_ip == 100)
        assert len(out) == 4  # i % 3 == 0 for i in 0..9

    def test_where_misaligned_mask(self):
        b = PacketBatch.from_packets(make_packets(3))
        with pytest.raises(ValueError):
            b.where(np.array([True]))

    def test_syn_only_filter(self):
        pkts = make_packets(3)
        mixed = pkts + [SynPacket(time=9, src_ip=1, dst_ip=2, src_port=3,
                                  dst_port=4, flags=FLAG_SYN | FLAG_ACK)]
        b = PacketBatch.from_packets(mixed)
        assert len(b.syn_only()) == 3

    def test_time_window(self):
        b = PacketBatch.from_packets(make_packets(10))
        assert len(b.time_window(2.0, 5.0)) == 3

    def test_time_window_bad_range(self):
        b = PacketBatch.from_packets(make_packets(3))
        with pytest.raises(ValueError):
            b.time_window(5.0, 2.0)

    def test_group_by_source(self):
        b = PacketBatch.from_packets(make_packets(9))
        groups = b.group_by_source()
        assert set(groups) == {100, 101, 102}
        assert sum(idx.size for idx in groups.values()) == 9
        # Indices within a group must belong to that source.
        for src, idx in groups.items():
            assert np.all(b.src_ip[idx] == src)

    def test_distinct_counts(self):
        b = PacketBatch.from_packets(make_packets(9))
        assert b.distinct_sources() == 3
        assert b.distinct_ports() == 1

    def test_port_packet_counts(self):
        b = PacketBatch.from_packets(make_packets(4))
        assert b.port_packet_counts() == {80: 4}

    def test_memory_accounting(self):
        b = PacketBatch.from_packets(make_packets(100))
        # 30 bytes of payload per packet across the declared dtypes.
        assert b.memory_bytes() == 100 * 30

    def test_repr_mentions_count(self):
        assert "3 packets" in repr(PacketBatch.from_packets(make_packets(3)))

    @given(st.integers(min_value=1, max_value=50))
    def test_concat_length_property(self, n):
        a = PacketBatch.from_packets(make_packets(n))
        b = PacketBatch.concat([a, a])
        assert len(b) == 2 * n


class TestPacketBatchImmutability:
    """The immutability invariant is enforced at runtime, not just by docs
    (and statically by lint rule RPR004)."""

    def test_column_write_raises(self):
        b = PacketBatch.from_packets(make_packets(3))
        with pytest.raises(ValueError):
            b.ttl[0] = 1

    def test_every_column_is_read_only(self):
        b = PacketBatch.from_packets(make_packets(3))
        for name, col in b.columns().items():
            assert not col.flags.writeable, name

    def test_augmented_write_raises(self):
        b = PacketBatch.from_packets(make_packets(3))
        with pytest.raises(ValueError):
            b.flags[:] |= 0x10

    def test_derived_batches_also_frozen(self):
        b = PacketBatch.from_packets(make_packets(10))
        for derived in (b[2:5], b.sorted_by_time(), b.syn_only(),
                        PacketBatch.concat([b, b])):
            with pytest.raises(ValueError):
                derived.time[0] = 99.0

    def test_caller_arrays_keep_their_flags(self):
        cols = {n: np.array(c) for n, c in
                PacketBatch.from_packets(make_packets(2)).columns().items()}
        PacketBatch(**cols)
        assert all(arr.flags.writeable for arr in cols.values())

    def test_columns_dict_rekeying_is_allowed(self):
        # anonymize_batch-style use: replace dict entries, never mutate arrays.
        b = PacketBatch.from_packets(make_packets(2))
        cols = b.columns()
        cols["src_ip"] = cols["src_ip"] + 1  # new array, fine
        rebuilt = PacketBatch(**cols)
        assert np.array_equal(rebuilt.src_ip, b.src_ip + 1)
