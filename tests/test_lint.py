"""Tests for repro.lint — rule fixtures, suppressions, baseline, CLI.

Each rule family gets positive (fires), negative (stays quiet), suppressed
and baselined fixtures; a final test asserts the live tree is clean against
the committed baseline, which is what CI enforces.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    LintConfig,
    Severity,
    lint_source,
)
from repro.lint.cli import main
from repro.lint.config import _fallback_parse, load_config
from repro.lint.engine import parse_suppressions

REPO_ROOT = Path(__file__).resolve().parent.parent


def run(source, rel_path="src/repro/core/mod.py", config=None):
    return lint_source(textwrap.dedent(source), rel_path, config=config)


def codes(source, rel_path="src/repro/core/mod.py", config=None):
    return [d.code for d in run(source, rel_path, config)]


class TestDeterminismRule:
    def test_stdlib_random_import_flagged(self):
        assert "RPR001" in codes("import random\n")

    def test_stdlib_random_from_import_flagged(self):
        assert "RPR001" in codes("from random import choice\n")

    def test_stdlib_random_call_flagged(self):
        src = """\
        import random
        x = random.random()
        """
        assert codes(src).count("RPR001") >= 2  # import + call

    def test_wall_clock_flagged(self):
        src = """\
        import time
        t = time.time()
        """
        assert "RPR001" in codes(src)

    def test_from_import_time_flagged(self):
        src = """\
        from time import time
        t = time()
        """
        assert "RPR001" in codes(src)

    def test_datetime_now_flagged(self):
        src = """\
        from datetime import datetime
        stamp = datetime.now()
        """
        assert "RPR001" in codes(src)

    def test_legacy_numpy_global_flagged(self):
        src = """\
        import numpy as np
        np.random.seed(0)
        x = np.random.rand(3)
        """
        assert codes(src).count("RPR001") == 2

    def test_unseeded_default_rng_flagged(self):
        src = """\
        import numpy as np
        g = np.random.default_rng()
        """
        assert "RPR001" in codes(src)

    def test_generator_methods_not_flagged(self):
        src = """\
        import numpy as np
        def draw(rng: np.random.Generator):
            return rng.integers(0, 10)
        """
        assert "RPR001" not in codes(src)

    def test_rng_module_is_exempt(self):
        src = """\
        import numpy as np
        g = np.random.default_rng()
        """
        assert codes(src, rel_path="src/repro/_util/rng.py") == []


class TestRngPlumbingRule:
    def test_seeded_default_rng_flagged(self):
        src = """\
        import numpy as np
        g = np.random.default_rng(42)
        """
        assert "RPR002" in codes(src)

    def test_seed_sequence_flagged(self):
        src = """\
        import numpy as np
        s = np.random.SeedSequence(7)
        """
        assert "RPR002" in codes(src)

    def test_randomstate_param_direct_draw_flagged(self):
        src = """\
        from repro._util.rng import RandomState
        def jitter(rng: RandomState):
            return rng.random()
        """
        assert "RPR002" in codes(src)

    def test_randomstate_param_string_annotation_flagged(self):
        src = """\
        def jitter(rng: "RandomState"):
            return rng.integers(0, 5)
        """
        assert "RPR002" in codes(src)

    def test_normalised_param_not_flagged(self):
        src = """\
        from repro._util.rng import RandomState, as_generator
        def jitter(rng: RandomState):
            generator = as_generator(rng)
            return generator.random()
        """
        assert "RPR002" not in codes(src)

    def test_rebound_param_not_flagged(self):
        src = """\
        from repro._util.rng import RandomState, as_generator
        def jitter(rng: RandomState):
            rng = as_generator(rng)
            return rng.random()
        """
        assert "RPR002" not in codes(src)

    def test_generator_annotation_not_flagged(self):
        src = """\
        import numpy as np
        def jitter(rng: np.random.Generator):
            return rng.random()
        """
        assert "RPR002" not in codes(src)


class TestHeaderFieldRule:
    def test_out_of_range_keyword_flagged(self):
        src = "pkt = SynPacket(time=0.0, src_ip=1, dst_ip=2, src_port=3, dst_port=4, ttl=300)\n"
        assert "RPR003" in codes(src)

    def test_out_of_range_port_keyword_flagged(self):
        assert "RPR003" in codes("probe(src_port=70000)\n")

    def test_negative_field_flagged(self):
        assert "RPR003" in codes("probe(ip_id=-1)\n")

    def test_in_range_keyword_quiet(self):
        src = "pkt = SynPacket(time=0.0, src_ip=1, dst_ip=2, src_port=3, dst_port=4, ttl=64)\n"
        assert "RPR003" not in codes(src)

    def test_impossible_validator_literal_flagged(self):
        assert "RPR003" in codes('check_port("p", 70000)\n')
        assert "RPR003" in codes('check_ttl("t", 256)\n')
        assert "RPR003" in codes('check_header_field("w", 65536, 16)\n')

    def test_possible_validator_literal_quiet(self):
        assert "RPR003" not in codes('check_port("p", 65535)\n')

    def test_numpy_scalar_overflow_flagged(self):
        src = """\
        import numpy as np
        x = np.uint8(256)
        """
        assert "RPR003" in codes(src)

    def test_numpy_scalar_in_range_quiet(self):
        src = """\
        import numpy as np
        x = np.uint16(0xFFFF)
        """
        assert "RPR003" not in codes(src)

    def test_narrowing_cast_on_column_flagged(self):
        src = """\
        import numpy as np
        low = batch.seq.astype(np.uint16)
        """
        assert "RPR003" in codes(src)

    def test_same_width_cast_quiet(self):
        src = """\
        import numpy as np
        t = batch.ttl.astype(np.uint8)
        """
        assert "RPR003" not in codes(src)

    def test_cast_on_plain_name_quiet(self):
        src = """\
        import numpy as np
        x = values.astype(np.uint8)
        """
        assert "RPR003" not in codes(src)


class TestBatchImmutabilityRule:
    def test_column_subscript_store_flagged(self):
        assert "RPR004" in codes("batch.ttl[0] = 1\n")

    def test_column_augmented_store_flagged(self):
        assert "RPR004" in codes("batch.flags[mask] |= 0x10\n")

    def test_cols_rebind_flagged(self):
        assert "RPR004" in codes("self._cols = {}\n")

    def test_cols_subscript_store_flagged(self):
        assert "RPR004" in codes('obj._cols["ttl"][0] = 5\n')

    def test_inplace_sort_flagged(self):
        assert "RPR004" in codes("batch.time.sort()\n")

    def test_plain_array_store_quiet(self):
        assert "RPR004" not in codes("arr[0] = 1\n")

    def test_unrelated_attribute_quiet(self):
        assert "RPR004" not in codes("self.total[0] = 1\n")

    def test_defining_module_exempt_for_cols_bind(self):
        src = "self._cols = cols\n"
        assert "RPR004" not in codes(src, rel_path="src/repro/telescope/packet.py")

    def test_column_write_flagged_even_in_packet_module(self):
        # The exemption covers binding the store, not mutating columns.
        assert "RPR004" in codes(
            "self.ttl[0] = 1\n", rel_path="src/repro/telescope/packet.py"
        )


class TestFloatEqualityRule:
    def test_float_literal_eq_flagged(self):
        assert "RPR005" in codes("flag = x == 0.5\n")

    def test_division_eq_flagged(self):
        assert "RPR005" in codes("flag = a / b == c\n")

    def test_numpy_mean_ne_flagged(self):
        src = """\
        import numpy as np
        flag = np.mean(v) != 0
        """
        assert "RPR005" in codes(src)

    def test_method_mean_eq_flagged(self):
        assert "RPR005" in codes("flag = xs.mean() == y\n")

    def test_int_eq_quiet(self):
        assert "RPR005" not in codes("flag = n == 5\n")

    def test_ordering_comparison_quiet(self):
        assert "RPR005" not in codes("flag = x < 0.5\n")

    def test_outside_core_quiet(self):
        assert "RPR005" not in codes(
            "flag = x == 0.5\n", rel_path="src/repro/simulation/mod.py"
        )


class TestSuppressions:
    def test_matching_code_suppressed(self):
        assert codes("batch.ttl[0] = 1  # repro-lint: disable=RPR004\n") == []

    def test_bare_disable_suppresses_all(self):
        src = """\
        import numpy as np
        g = np.random.default_rng()  # repro-lint: disable
        """
        assert codes(src) == []

    def test_multiple_codes(self):
        src = "batch.ttl[0] = np.uint8(256)  # repro-lint: disable=RPR003,RPR004\n"
        assert codes("import numpy as np\n" + src) == []

    def test_wrong_code_does_not_suppress(self):
        assert codes("batch.ttl[0] = 1  # repro-lint: disable=RPR001\n") == ["RPR004"]

    def test_parse_suppressions_shapes(self):
        lines = [
            "x = 1",
            "y = 2  # repro-lint: disable=RPR001, RPR005",
            "z = 3  # repro-lint: disable",
        ]
        table = parse_suppressions(lines)
        assert table == {2: {"RPR001", "RPR005"}, 3: None}


class TestSeverityAndConfig:
    def test_warn_demotes_severity(self):
        cfg = LintConfig(warn=["RPR005"])
        diags = run("flag = x == 0.5\n", config=cfg)
        assert [d.severity for d in diags] == [Severity.WARNING]

    def test_disable_removes_rule(self):
        cfg = LintConfig(disable=["RPR004"])
        assert codes("batch.ttl[0] = 1\n", config=cfg) == []

    def test_load_config_reads_table(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(textwrap.dedent("""\
            [tool.other]
            x = 1

            [tool.repro-lint]
            paths = ["src/pkg"]
            baseline = "custom-baseline.json"
            warn = ["RPR005"]
        """))
        cfg = load_config(pyproject)
        assert cfg.paths == ["src/pkg"]
        assert cfg.baseline == "custom-baseline.json"
        assert cfg.warn == ["RPR005"]
        assert cfg.root == tmp_path.resolve()

    def test_load_config_rejects_unknown_key(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text("[tool.repro-lint]\nbogus = \"x\"\n")
        with pytest.raises(ValueError):
            load_config(pyproject)

    def test_fallback_parser_matches_subset(self):
        text = textwrap.dedent("""\
            [project]
            name = "x"

            [tool.repro-lint]
            baseline = "b.json"  # trailing comment
            paths = [
                "src/a",
                "src/b",
            ]
            warn = []

            [tool.after]
            y = "z"
        """)
        table = _fallback_parse(text)
        assert table == {
            "baseline": "b.json",
            "paths": ["src/a", "src/b"],
            "warn": [],
        }


class TestBaseline:
    def test_roundtrip(self, tmp_path):
        diags = run("batch.ttl[0] = 1\n")
        baseline = Baseline.from_diagnostics(diags)
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        new, known = loaded.partition(diags)
        assert new == [] and known == diags

    def test_missing_file_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "nope.json").entries == set()

    def test_version_check(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError):
            Baseline.load(path)


VIOLATIONS = {
    "RPR001": "import numpy as np\ng = np.random.default_rng()\n",
    "RPR002": "import numpy as np\ng = np.random.default_rng(42)\n",
    "RPR003": "probe(ttl=300)\n",
    "RPR004": "batch.ttl[0] = 1\n",
    "RPR005": "flag = x == 0.5\n",
}


class TestCli:
    @pytest.mark.parametrize("code", sorted(VIOLATIONS))
    def test_each_rule_family_fails_the_run(self, tmp_path, code, capsys):
        target = tmp_path / "core" / "snippet.py"
        target.parent.mkdir()
        target.write_text(VIOLATIONS[code])
        status = main([str(target), "--no-baseline"])
        out = capsys.readouterr().out
        assert status == 1
        assert code in out

    def test_clean_file_exits_zero(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert main([str(target), "--no-baseline"]) == 0

    def test_baseline_workflow(self, tmp_path, capsys):
        target = tmp_path / "core" / "snippet.py"
        target.parent.mkdir()
        target.write_text("batch.ttl[0] = 1\n")
        baseline = tmp_path / "baseline.json"

        assert main([str(target), "--baseline", str(baseline)]) == 1
        assert main([str(target), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        # Grandfathered now.
        assert main([str(target), "--baseline", str(baseline)]) == 0
        # A new violation still fails.
        target.write_text("batch.ttl[0] = 1\nbatch.time.sort()\n")
        assert main([str(target), "--baseline", str(baseline)]) == 1
        capsys.readouterr()

    def test_json_format(self, tmp_path, capsys):
        target = tmp_path / "core" / "snippet.py"
        target.parent.mkdir()
        target.write_text("flag = x == 0.5\n")
        status = main([str(target), "--no-baseline", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert status == 1
        assert payload["findings"][0]["code"] == "RPR005"

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in sorted(VIOLATIONS):
            assert code in out

    def test_missing_path_is_usage_error(self, tmp_path):
        assert main([str(tmp_path / "ghost.py"), "--no-baseline"]) == 2

    def test_syntax_error_is_usage_error(self, tmp_path, capsys):
        target = tmp_path / "broken.py"
        target.write_text("def f(:\n")
        assert main([str(target), "--no-baseline"]) == 2
        capsys.readouterr()


class TestLiveTree:
    """The enforcement test: the shipped tree must lint clean against the
    committed configuration and baseline."""

    def test_src_repro_is_clean(self, capsys):
        status = main([
            str(REPO_ROOT / "src" / "repro"),
            "--config", str(REPO_ROOT / "pyproject.toml"),
        ])
        out = capsys.readouterr().out
        assert status == 0, f"repro-lint found new violations:\n{out}"
