"""Tests for the ZMap permutation / sharding substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.scanners.permutation import (
    DEFAULT_GENERATOR,
    ZMAP_PRIME,
    ZMapPermutation,
    is_generator,
    is_probable_prime,
    shard_set,
)

# A small prime with full-group generator for exhaustive walks.
SMALL_PRIME = 257          # 2^8 + 1
SMALL_GENERATOR = 3        # generator mod 257


class TestPrimality:
    @pytest.mark.parametrize("n", [2, 3, 5, 7, 257, 65537, ZMAP_PRIME])
    def test_primes(self, n):
        assert is_probable_prime(n)

    @pytest.mark.parametrize("n", [0, 1, 4, 9, 255, 2**32, 2**32 + 1])
    def test_composites(self, n):
        assert not is_probable_prime(n)

    def test_zmap_prime_is_smallest_above_2_32(self):
        assert is_probable_prime(ZMAP_PRIME)
        for n in range(2**32, ZMAP_PRIME):
            assert not is_probable_prime(n)


class TestGenerator:
    def test_small_generator(self):
        assert is_generator(SMALL_GENERATOR, SMALL_PRIME)

    def test_non_generator(self):
        # 4 = 2^2 generates only a subgroup of even order mod 257.
        assert not is_generator(4, SMALL_PRIME)

    def test_default_generator_of_zmap_prime(self):
        assert is_generator(DEFAULT_GENERATOR, ZMAP_PRIME)

    def test_composite_modulus_rejected(self):
        with pytest.raises(ValueError):
            is_generator(3, 10)


class TestUnshardedWalk:
    def test_visits_every_address_exactly_once(self):
        perm = ZMapPermutation(prime=SMALL_PRIME, generator=SMALL_GENERATOR,
                               space_size=200)
        visited = list(perm)
        assert len(visited) == 200
        assert sorted(visited) == list(range(1, 201))

    def test_range_skipping(self):
        perm = ZMapPermutation(prime=SMALL_PRIME, generator=SMALL_GENERATOR,
                               space_size=100)
        visited = list(perm)
        assert sorted(visited) == list(range(1, 101))

    def test_order_is_not_sequential(self):
        perm = ZMapPermutation(prime=SMALL_PRIME, generator=SMALL_GENERATOR,
                               space_size=256)
        first = perm.take(20)
        assert first != sorted(first)

    def test_different_starts_rotate_walk(self):
        a = ZMapPermutation(prime=SMALL_PRIME, generator=SMALL_GENERATOR,
                            space_size=256, start=1)
        b = ZMapPermutation(prime=SMALL_PRIME, generator=SMALL_GENERATOR,
                            space_size=256, start=7)
        assert list(a) != list(b)
        assert sorted(a) == sorted(b)

    def test_take(self):
        perm = ZMapPermutation(prime=SMALL_PRIME, generator=SMALL_GENERATOR,
                               space_size=256)
        assert len(perm.take(10)) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            ZMapPermutation(prime=10)
        with pytest.raises(ValueError):
            ZMapPermutation(prime=SMALL_PRIME, space_size=SMALL_PRIME)
        with pytest.raises(ValueError):
            ZMapPermutation(prime=SMALL_PRIME, space_size=100, shards=0)
        with pytest.raises(ValueError):
            ZMapPermutation(prime=SMALL_PRIME, space_size=100,
                            shard=2, shards=2)
        with pytest.raises(ValueError):
            ZMapPermutation(prime=SMALL_PRIME, space_size=100, start=0)


class TestSharding:
    @pytest.mark.parametrize("shards", [2, 3, 4, 8])
    def test_shards_partition_the_space(self, shards):
        """The defining property: shards are disjoint and jointly complete."""
        slices = shard_set(shards, prime=SMALL_PRIME,
                           generator=SMALL_GENERATOR, space_size=256)
        seen = []
        for s in slices:
            seen.extend(s)
        assert sorted(seen) == list(range(1, 257))

    def test_shard_sizes_balanced(self):
        slices = shard_set(4, prime=SMALL_PRIME, generator=SMALL_GENERATOR,
                           space_size=256)
        sizes = [len(list(s)) for s in slices]
        assert max(sizes) - min(sizes) <= 1

    def test_expected_share(self):
        slices = shard_set(4, prime=SMALL_PRIME, generator=SMALL_GENERATOR,
                           space_size=256)
        for s in slices:
            assert s.expected_share() == pytest.approx(0.25, abs=0.01)

    def test_zmap_prime_shard_prefix_disjoint(self):
        """On the real 2^32+15 prime, shard prefixes must not overlap."""
        slices = shard_set(3)
        prefixes = [set(s.take(2000)) for s in slices]
        assert not (prefixes[0] & prefixes[1])
        assert not (prefixes[0] & prefixes[2])
        assert not (prefixes[1] & prefixes[2])

    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=SMALL_PRIME - 1))
    @settings(max_examples=25, deadline=None)
    def test_partition_property(self, shards, start):
        slices = shard_set(shards, prime=SMALL_PRIME,
                           generator=SMALL_GENERATOR, space_size=256,
                           start=start)
        seen = []
        for s in slices:
            seen.extend(s)
        assert sorted(seen) == list(range(1, 257))
