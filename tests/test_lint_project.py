"""Tests for the whole-program lint pass (repro.lint.project, RPR006-009).

Each project rule gets a seeded-violation fixture package plus a clean
counterpart; the pass itself is exercised for cache hit/invalidation on
edit, worker-count independence (0/1/4 produce identical diagnostics),
SARIF output against a golden file, and ``--update-baseline`` pruning.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    LintConfig,
    Severity,
    lint_repository,
)
from repro.lint.cli import main
from repro.lint.project import (
    SummaryCache,
    module_name_for,
    summarize_source,
)
from repro.lint.rules.schema_drift import (
    collect_sites,
    fingerprint_fields,
    write_manifest,
)
from repro.lint.sarif import to_sarif
from repro.lint.engine import REGISTRY

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_SARIF = Path(__file__).resolve().parent / "data" / "lint_golden.sarif"

#: File rules are exercised by tests/test_lint.py; fixtures here disable
#: them so each assertion sees only the project rule under test.
FILE_RULES = ["RPR001", "RPR002", "RPR003", "RPR004", "RPR005"]


def write_tree(root, files):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")


def run_project(tmp_path, files, **cfg_kwargs):
    write_tree(tmp_path, files)
    cfg_kwargs.setdefault("paths", ["pkg"])
    cfg_kwargs.setdefault("disable", FILE_RULES)
    config = LintConfig(root=tmp_path, **cfg_kwargs)
    diags, project, stats = lint_repository(config, use_cache=False)
    return diags, project, stats


def codes(diags):
    return [d.code for d in diags]


# ---------------------------------------------------------------------------
# pass 1: summaries
# ---------------------------------------------------------------------------


class TestModuleSummary:
    def test_module_name_for(self):
        assert module_name_for("src/repro/exec/cache.py") == "repro.exec.cache"
        assert module_name_for("pkg/__init__.py") == "pkg"
        assert module_name_for("pkg/sub/mod.py") == "pkg.sub.mod"

    def test_summary_round_trips_through_json(self):
        src = textwrap.dedent("""\
            from repro._util.rng import derive_rng

            SCHEMA_VERSION = 3
            _TABLE = {}

            def f(rng, arr):
                arr.sort()
                return derive_rng(rng, "label", 7)
        """)
        summary = summarize_source(src, "pkg/mod.py")
        from repro.lint.project import ModuleSummary

        clone = ModuleSummary.from_dict(
            json.loads(json.dumps(summary.to_dict()))
        )
        assert clone.to_dict() == summary.to_dict()
        assert clone.constants["SCHEMA_VERSION"] == "3"
        assert clone.mutable_globals == ["_TABLE"]
        [site] = clone.rng_sites
        assert site.tokens == ["'label'", "7"]
        assert clone.functions["f"].mutated_params == [1]

    def test_schema_fields_from_returned_dict(self):
        src = textwrap.dedent("""\
            class Store:
                def snapshot(self):
                    return {"a": 1, "b": 2}
        """)
        summary = summarize_source(src, "pkg/store.py")
        assert summary.schema_fields["Store.snapshot"]["fields"] == ["a", "b"]

    def test_schema_fields_from_pair_sequence_constant(self):
        src = 'COLS = (("x", "<u4"), ("y", "<u2"))\n'
        summary = summarize_source(src, "pkg/cols.py")
        assert summary.schema_fields["COLS"]["fields"] == ["x", "y"]


# ---------------------------------------------------------------------------
# RPR006: derive_rng key paths
# ---------------------------------------------------------------------------


RPR006_COLLIDING = {
    "pkg/__init__.py": "",
    "pkg/a.py": """\
        from repro._util.rng import derive_rng

        def f(rng, year):
            return derive_rng(rng, "year", year)
    """,
    "pkg/b.py": """\
        from repro._util.rng import derive_rng

        def g(rng):
            return derive_rng(rng, "year", 2020)
    """,
}


class TestRngKeysRule:
    def test_colliding_keys_across_modules_flagged(self, tmp_path):
        diags, _, _ = run_project(tmp_path, RPR006_COLLIDING)
        assert codes(diags) == ["RPR006"]
        assert "collide" in diags[0].message
        assert "pkg/a.py" in diags[0].message

    def test_ambiguous_key_flagged(self, tmp_path):
        files = {
            "pkg/__init__.py": "",
            "pkg/a.py": """\
                from repro._util.rng import derive_rng

                def f(rng, year):
                    return derive_rng(rng, year)
            """,
        }
        diags, _, _ = run_project(tmp_path, files)
        assert codes(diags) == ["RPR006"]
        assert "no constant leading key token" in diags[0].message

    def test_distinct_labels_clean(self, tmp_path):
        files = {
            "pkg/__init__.py": "",
            "pkg/a.py": """\
                from repro._util.rng import derive_rng

                def f(rng, year):
                    a = derive_rng(rng, "alpha", year)
                    b = derive_rng(rng, "beta", year)
                    return a, b
            """,
        }
        diags, _, _ = run_project(tmp_path, files)
        assert diags == []

    def test_rng_exempt_paths_skipped(self, tmp_path):
        diags, _, _ = run_project(
            tmp_path, RPR006_COLLIDING, rng_exempt=["pkg/a.py", "pkg/b.py"]
        )
        assert diags == []

    def test_suppression_comment_silences(self, tmp_path):
        files = dict(RPR006_COLLIDING)
        files["pkg/b.py"] = """\
            from repro._util.rng import derive_rng

            def g(rng):
                return derive_rng(rng, "year", 2020)  # repro-lint: disable=RPR006
        """
        diags, _, _ = run_project(tmp_path, files)
        assert diags == []


# ---------------------------------------------------------------------------
# RPR007: process-boundary purity
# ---------------------------------------------------------------------------


RPR007_FILES = {
    "pkg/__init__.py": "",
    "pkg/state.py": """\
        CACHE = {}

        def helper(x):
            CACHE[x] = x
            return x
    """,
    "pkg/parallel.py": """\
        import os
        from concurrent.futures import ProcessPoolExecutor

        from pkg.state import helper

        def task(x):
            helper(x)
            return os.urandom(4)

        def run(items):
            with ProcessPoolExecutor() as pool:
                futures = [pool.submit(task, x) for x in items]
            return [f.result() for f in futures]
    """,
}


class TestProcessSafetyRule:
    def test_submitted_function_reaching_global_and_randomness(self, tmp_path):
        diags, _, _ = run_project(
            tmp_path, RPR007_FILES, executor_modules=["pkg/parallel.py"]
        )
        assert codes(diags) == ["RPR007", "RPR007"]
        messages = "\n".join(d.message for d in diags)
        assert "CACHE" in messages  # via task -> helper, cross-module
        assert "os.urandom" in messages
        assert all(d.path == "pkg/parallel.py" for d in diags)

    def test_out_of_scope_module_ignored(self, tmp_path):
        diags, _, _ = run_project(tmp_path, RPR007_FILES)
        assert diags == []  # default executor-modules is exec/parallel.py

    def test_pure_task_clean(self, tmp_path):
        files = {
            "pkg/__init__.py": "",
            "pkg/parallel.py": """\
                from concurrent.futures import ProcessPoolExecutor

                def task(x, table):
                    return table[x] + 1

                def run(items, table):
                    with ProcessPoolExecutor() as pool:
                        futures = [pool.submit(task, x, table) for x in items]
                    return [f.result() for f in futures]
            """,
        }
        diags, _, _ = run_project(
            tmp_path, files, executor_modules=["pkg/parallel.py"]
        )
        assert diags == []

    def test_live_exec_parallel_worker_is_pure(self):
        """Satellite audit: the real fan-out worker stays submittable."""
        config = LintConfig(root=REPO_ROOT)
        diags, project, _ = lint_repository(
            config,
            paths=[REPO_ROOT / "src" / "repro" / "exec"],
            use_cache=False,
        )
        parallel = project.modules["src/repro/exec/parallel.py"]
        assert [s.callee for s in parallel.submit_sites] == [
            "repro.exec.parallel._simulate_year_task"
        ]
        assert not [d for d in diags if d.code == "RPR007"]


# ---------------------------------------------------------------------------
# RPR008: persisted-schema drift
# ---------------------------------------------------------------------------


def store_source(fields, version=1):
    keys = ", ".join(f'"{k}": 0' for k in fields)
    return (
        f"STORE_SCHEMA_VERSION = {version}\n\n\n"
        "class Store:\n"
        "    def snapshot(self):\n"
        f"        return {{{keys}}}\n"
    )


RPR008_SITE = "pkg/store.py:Store.snapshot:pkg/store.py:STORE_SCHEMA_VERSION"


class TestSchemaDriftRule:
    def _config(self, tmp_path):
        return dict(
            schema_sites=[RPR008_SITE],
            schema_manifest="lint-schema.json",
        )

    def _write_manifest(self, tmp_path, files, **cfg_kwargs):
        _, project, _ = run_project(tmp_path, files, **cfg_kwargs)
        config = LintConfig(
            root=tmp_path, paths=["pkg"], disable=FILE_RULES, **cfg_kwargs
        )
        write_manifest(
            tmp_path / "lint-schema.json", collect_sites(project, config)
        )

    def test_missing_manifest_entry_is_error(self, tmp_path):
        files = {"pkg/__init__.py": "", "pkg/store.py": store_source(["a"])}
        diags, _, _ = run_project(tmp_path, files, **self._config(tmp_path))
        assert codes(diags) == ["RPR008"]
        assert "not recorded" in diags[0].message

    def test_recorded_schema_is_clean(self, tmp_path):
        files = {"pkg/__init__.py": "", "pkg/store.py": store_source(["a", "b"])}
        cfg = self._config(tmp_path)
        self._write_manifest(tmp_path, files, **cfg)
        diags, _, _ = run_project(tmp_path, files, **cfg)
        assert diags == []

    def test_drift_without_version_bump_is_error(self, tmp_path):
        cfg = self._config(tmp_path)
        files = {"pkg/__init__.py": "", "pkg/store.py": store_source(["a", "b"])}
        self._write_manifest(tmp_path, files, **cfg)
        files["pkg/store.py"] = store_source(["a", "b", "c"])
        diags, _, _ = run_project(tmp_path, files, **cfg)
        assert codes(diags) == ["RPR008"]
        assert diags[0].severity is Severity.ERROR
        assert "+c" in diags[0].message
        assert "STORE_SCHEMA_VERSION" in diags[0].message

    def test_drift_with_version_bump_is_warning(self, tmp_path):
        cfg = self._config(tmp_path)
        files = {"pkg/__init__.py": "", "pkg/store.py": store_source(["a", "b"])}
        self._write_manifest(tmp_path, files, **cfg)
        files["pkg/store.py"] = store_source(["a", "b", "c"], version=2)
        diags, _, _ = run_project(tmp_path, files, **cfg)
        assert codes(diags) == ["RPR008"]
        assert diags[0].severity is Severity.WARNING
        assert "--update-schema-manifest" in diags[0].message

    def test_field_removal_detected(self, tmp_path):
        cfg = self._config(tmp_path)
        files = {"pkg/__init__.py": "", "pkg/store.py": store_source(["a", "b"])}
        self._write_manifest(tmp_path, files, **cfg)
        files["pkg/store.py"] = store_source(["a"])
        diags, _, _ = run_project(tmp_path, files, **cfg)
        assert codes(diags) == ["RPR008"]
        assert "-b" in diags[0].message

    def test_live_tree_manifest_matches(self):
        """Satellite audit: the committed manifest matches the tree, and
        every persisted store is covered by a schema site."""
        from repro.lint.config import load_config

        config = load_config(REPO_ROOT / "pyproject.toml")
        _, project, _ = lint_repository(
            config, paths=[REPO_ROOT / "src" / "repro"], use_cache=False
        )
        sites = collect_sites(project, config)
        assert set(sites) == {
            "exec/cache.py:CaptureCache.store.meta",
            "stream/incremental.py:IncrementalScanIdentifier.snapshot",
            "telescope/trace.py:_COLUMN_ORDER",
        }
        committed = json.loads(
            (REPO_ROOT / "lint-schema.json").read_text()
        )
        assert committed["sites"] == sites

    def test_fingerprint_is_order_independent(self):
        assert fingerprint_fields(["b", "a"]) == fingerprint_fields(["a", "b"])
        assert fingerprint_fields(["a"]) != fingerprint_fields(["a", "b"])


# ---------------------------------------------------------------------------
# RPR009: interprocedural batch-column mutation
# ---------------------------------------------------------------------------


RPR009_FILES = {
    "pkg/__init__.py": "",
    "pkg/mut.py": """\
        def scramble(arr):
            arr.sort()
            return arr
    """,
    "pkg/use.py": """\
        from pkg.mut import scramble

        def summarise(batch):
            return scramble(batch.src_ip)
    """,
}


class TestBatchColumnFlowRule:
    def test_cross_module_mutation_flagged(self, tmp_path):
        diags, _, _ = run_project(tmp_path, RPR009_FILES)
        assert codes(diags) == ["RPR009"]
        assert diags[0].path == "pkg/use.py"
        assert "src_ip" in diags[0].message
        assert "scramble" in diags[0].message

    def test_transitive_forwarding_flagged(self, tmp_path):
        files = dict(RPR009_FILES)
        files["pkg/use.py"] = """\
            from pkg.mut import scramble

            def outer(col):
                return scramble(col)

            def summarise(batch):
                return outer(batch.src_ip)
        """
        diags, _, _ = run_project(tmp_path, files)
        assert codes(diags) == ["RPR009"]
        assert "outer" in diags[0].message

    def test_pure_callee_clean(self, tmp_path):
        files = dict(RPR009_FILES)
        files["pkg/mut.py"] = """\
            def scramble(arr):
                out = arr.copy()
                out.sort()
                return out
        """
        diags, _, _ = run_project(tmp_path, files)
        assert diags == []

    def test_method_receiver_shift(self, tmp_path):
        files = {
            "pkg/__init__.py": "",
            "pkg/cls.py": """\
                class Helper:
                    def mutate(self, arr):
                        arr.fill(0)
                        return arr

                    def run(self, batch):
                        return self.mutate(batch.ttl)
            """,
        }
        diags, _, _ = run_project(tmp_path, files)
        assert codes(diags) == ["RPR009"]
        assert "'arr'" in diags[0].message

    def test_immutability_exempt_path_skipped(self, tmp_path):
        diags, _, _ = run_project(
            tmp_path, RPR009_FILES, immutability_exempt=["pkg/use.py"]
        )
        assert diags == []


# ---------------------------------------------------------------------------
# caching & parallel pass
# ---------------------------------------------------------------------------


class TestSummaryCache:
    def _run(self, tmp_path, cache_dir):
        config = LintConfig(root=tmp_path, paths=["pkg"], disable=FILE_RULES)
        return lint_repository(
            config, workers=0, cache_dir=cache_dir, use_cache=True
        )

    def test_cold_then_warm_then_invalidation(self, tmp_path):
        write_tree(tmp_path, RPR006_COLLIDING)
        cache_dir = tmp_path / ".cache"

        cold_diags, _, cold = self._run(tmp_path, cache_dir)
        assert (cold.cache_hits, cold.cache_misses) == (0, 3)

        warm_diags, _, warm = self._run(tmp_path, cache_dir)
        assert (warm.cache_hits, warm.cache_misses) == (3, 0)
        assert warm.parsed == 0
        assert warm_diags == cold_diags

        # Editing one file invalidates exactly that file's entry.
        target = tmp_path / "pkg" / "b.py"
        target.write_text(
            target.read_text().replace('"year"', '"season"'), encoding="utf-8"
        )
        edited_diags, _, edited = self._run(tmp_path, cache_dir)
        assert (edited.cache_hits, edited.cache_misses) == (2, 1)
        assert edited_diags == []  # collision resolved by the edit

    def test_config_change_invalidates(self, tmp_path):
        write_tree(tmp_path, RPR006_COLLIDING)
        cache_dir = tmp_path / ".cache"
        self._run(tmp_path, cache_dir)

        config = LintConfig(
            root=tmp_path, paths=["pkg"], disable=FILE_RULES,
            rng_exempt=["pkg/a.py"],
        )
        _, _, stats = lint_repository(
            config, cache_dir=cache_dir, use_cache=True
        )
        assert stats.cache_hits == 0  # different config fingerprint

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        write_tree(tmp_path, RPR006_COLLIDING)
        cache_dir = tmp_path / ".cache"
        diags, _, _ = self._run(tmp_path, cache_dir)
        for entry in cache_dir.glob("*.lint.json"):
            entry.write_text("{not json", encoding="utf-8")
        rerun_diags, _, stats = self._run(tmp_path, cache_dir)
        assert stats.cache_misses == 3
        assert rerun_diags == diags


class TestWorkerEquivalence:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_diagnostics_identical_at_any_worker_count(
        self, tmp_path, workers
    ):
        files = {**RPR006_COLLIDING, **{
            k: v for k, v in RPR009_FILES.items() if k != "pkg/__init__.py"
        }}
        write_tree(tmp_path, files)
        config = LintConfig(root=tmp_path, paths=["pkg"], disable=FILE_RULES)
        serial, _, _ = lint_repository(config, workers=0, use_cache=False)
        parallel, _, _ = lint_repository(
            config, workers=workers, use_cache=False
        )
        assert sorted(codes(serial)) == ["RPR006", "RPR009"]
        assert parallel == serial


# ---------------------------------------------------------------------------
# CLI: SARIF, --update-baseline, --update-schema-manifest
# ---------------------------------------------------------------------------


def write_cli_project(tmp_path, files):
    write_tree(tmp_path, files)
    disable = ", ".join(f'"{c}"' for c in FILE_RULES)
    (tmp_path / "pyproject.toml").write_text(textwrap.dedent(f"""\
        [tool.repro-lint]
        paths = ["pkg"]
        disable = [{disable}]
        cache = ""
        schema-sites = []
    """), encoding="utf-8")
    return tmp_path / "pyproject.toml"


class TestCli:
    def test_sarif_output_matches_golden(self, tmp_path, capsys):
        pyproject = write_cli_project(tmp_path, RPR006_COLLIDING)
        out_file = tmp_path / "lint.sarif"
        status = main([
            "--config", str(pyproject),
            "--format", "sarif", "--output", str(out_file),
            "--no-baseline",
        ])
        capsys.readouterr()
        assert status == 1
        produced = json.loads(out_file.read_text())
        # The driver version tracks the library; normalise for the golden.
        produced["runs"][0]["tool"]["driver"]["version"] = "0.0.0"
        golden = json.loads(GOLDEN_SARIF.read_text())
        assert produced == golden

    def test_sarif_results_cover_all_registered_rules(self):
        sarif = to_sarif([], REGISTRY)
        rule_ids = [r["id"] for r in sarif["runs"][0]["tool"]["driver"]["rules"]]
        assert rule_ids == [f"RPR{i:03d}" for i in range(1, 20)]

    def test_update_baseline_prunes_stale_entry(self, tmp_path, capsys):
        pyproject = write_cli_project(tmp_path, RPR006_COLLIDING)

        status = main(["--config", str(pyproject), "--write-baseline"])
        capsys.readouterr()
        assert status == 0
        baseline_path = tmp_path / "lint-baseline.json"
        assert len(Baseline.load(baseline_path).entries) == 1

        # Fix the collision: the baselined entry goes stale.
        target = tmp_path / "pkg" / "b.py"
        target.write_text(
            target.read_text().replace('"year"', '"season"'), encoding="utf-8"
        )
        status = main(["--config", str(pyproject), "--update-baseline"])
        out = capsys.readouterr().out
        assert status == 1
        assert "pruned stale baseline entry" in out
        assert Baseline.load(baseline_path).entries == set()

        # A second update run is clean and exits 0.
        status = main(["--config", str(pyproject), "--update-baseline"])
        capsys.readouterr()
        assert status == 0

    def test_update_schema_manifest_cli(self, tmp_path, capsys):
        files = {"pkg/__init__.py": "", "pkg/store.py": store_source(["a"])}
        write_tree(tmp_path, files)
        (tmp_path / "pyproject.toml").write_text(textwrap.dedent(f"""\
            [tool.repro-lint]
            paths = ["pkg"]
            disable = [{", ".join(f'"{c}"' for c in FILE_RULES)}]
            cache = ""
            schema-sites = ["{RPR008_SITE}"]
        """), encoding="utf-8")
        pyproject = tmp_path / "pyproject.toml"

        status = main([
            "--config", str(pyproject), "--no-baseline",
        ])
        capsys.readouterr()
        assert status == 1  # unrecorded schema site

        status = main(["--config", str(pyproject), "--update-schema-manifest"])
        capsys.readouterr()
        assert status == 0
        manifest = json.loads((tmp_path / "lint-schema.json").read_text())
        assert "pkg/store.py:Store.snapshot" in manifest["sites"]

        status = main(["--config", str(pyproject), "--no-baseline"])
        capsys.readouterr()
        assert status == 0

    def test_workers_flag_matches_serial(self, tmp_path, capsys):
        pyproject = write_cli_project(tmp_path, RPR006_COLLIDING)
        outputs = []
        for flags in ([], ["--workers", "2"]):
            status = main([
                "--config", str(pyproject), "--no-baseline",
                "--format", "json", *flags,
            ])
            assert status == 1
            payload = json.loads(capsys.readouterr().out)
            outputs.append(payload["findings"])
        assert outputs[0] == outputs[1]


class TestBaselineVersionError:
    def test_load_names_both_versions(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError) as excinfo:
            Baseline.load(path)
        message = str(excinfo.value)
        assert "99" in message
        assert "version 1" in message
        assert str(path) in message
