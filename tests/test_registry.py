"""Unit tests for the synthetic Internet registry."""

import numpy as np
import pytest

from repro.enrichment import AllocationType, COUNTRIES, build_default_registry
from repro.enrichment.registry import InternetRegistry, PrefixRecord
from repro.telescope.addresses import CidrBlock


class TestConstruction:
    def test_deterministic(self):
        a = build_default_registry()
        b = build_default_registry()
        assert len(a) == len(b)
        assert all(x.block == y.block and x.asn == y.asn
                   for x, y in zip(a.records, b.records))

    def test_overlap_rejected(self):
        recs = [
            PrefixRecord(CidrBlock.parse("10.0.0.0/24"), 1, "a", "US",
                         AllocationType.HOSTING),
            PrefixRecord(CidrBlock.parse("10.0.0.128/25"), 2, "b", "US",
                         AllocationType.HOSTING),
        ]
        with pytest.raises(ValueError):
            InternetRegistry(recs)

    def test_all_countries_present(self, registry):
        countries = {r.country for r in registry.records}
        assert set(COUNTRIES) <= countries

    def test_all_types_present(self, registry):
        types = {r.alloc_type for r in registry.records}
        assert types == set(AllocationType)

    def test_telescope_space_untouched(self, registry):
        # 100.64.0.0 – 100.66.255.255 must stay unallocated.
        lo, hi = 0x64400000, 0x6442FFFF
        for record in registry.records:
            assert record.block.last < lo or record.block.first > hi

    def test_fpt_asn_present(self, registry):
        probe = [r for r in registry.records if r.asn == 18403]
        assert len(probe) == 1
        assert probe[0].country == "VN"
        assert probe[0].alloc_type == AllocationType.ENTERPRISE


class TestLookup:
    def test_lookup_hit(self, registry):
        record = registry.records[10]
        hit = registry.lookup(record.block.first + 5)
        assert hit == record

    def test_lookup_miss(self, registry):
        assert registry.lookup(100) is None  # below the allocation base

    def test_lookup_indices_vectorised(self, registry):
        record = registry.records[0]
        arr = np.array([record.block.first, 0], dtype=np.uint32)
        idx = registry.lookup_indices(arr)
        assert idx[0] == 0 and idx[1] == -1

    def test_country_of_default(self, registry):
        got = registry.country_of(np.array([5], dtype=np.uint32))
        assert got[0] == "??"

    def test_type_of(self, registry):
        record = next(r for r in registry.records
                      if r.alloc_type == AllocationType.RESIDENTIAL)
        got = registry.type_of(np.array([record.block.first], dtype=np.uint32))
        assert got[0] == "residential"

    def test_asn_of(self, registry):
        record = registry.records[3]
        got = registry.asn_of(np.array([record.block.first], dtype=np.uint32))
        assert got[0] == record.asn

    def test_prefixes_of_org(self, registry):
        censys = registry.prefixes_of_org("Censys")
        assert len(censys) == 8
        assert all(p.alloc_type == AllocationType.INSTITUTIONAL for p in censys)

    def test_organisations_sorted(self, registry):
        orgs = registry.organisations()
        assert list(orgs) == sorted(orgs)


class TestSampling:
    def test_sample_respects_filters(self, registry, rng):
        ips = registry.sample_addresses(rng, 100, country="NL",
                                        alloc_type=AllocationType.HOSTING)
        assert np.all(registry.country_of(ips) == "NL")
        assert np.all(registry.type_of(ips) == "hosting")

    def test_sample_org(self, registry, rng):
        ips = registry.sample_addresses(rng, 20, organisation="Shodan")
        idx = registry.lookup_indices(ips)
        assert np.all(idx >= 0)
        for i in set(idx.tolist()):
            assert registry.records[i].organisation == "Shodan"

    def test_sample_no_match_raises(self, registry, rng):
        with pytest.raises(ValueError):
            registry.sample_addresses(rng, 5, country="XX")

    def test_sample_from_prefixes_weights(self, registry, rng):
        indices = registry.matching_prefix_indices(
            country="CN", alloc_type=AllocationType.RESIDENTIAL
        )
        assert len(indices) >= 2
        weights = [1.0] + [0.0] * (len(indices) - 1)
        ips = registry.sample_from_prefixes(rng, indices, 200, weights=weights)
        block = registry.records[indices[0]].block
        assert np.all(block.contains_array(ips))

    def test_sample_from_prefixes_rejects_bad_weights(self, registry, rng):
        indices = registry.matching_prefix_indices(country="CN")
        with pytest.raises(ValueError):
            registry.sample_from_prefixes(rng, indices, 5, weights=[1.0])

    def test_sample_from_prefixes_empty(self, registry, rng):
        with pytest.raises(ValueError):
            registry.sample_from_prefixes(rng, [], 5)

    def test_matching_prefix_indices_empty_for_unknown(self, registry):
        assert registry.matching_prefix_indices(country="XX") == []
