"""Tests for prefix-preserving anonymisation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.telescope.anonymize import (
    PrefixPreservingAnonymizer,
    shared_prefix_length,
)
from repro.telescope.addresses import ip_to_int

addresses = st.integers(min_value=0, max_value=2**32 - 1)


class TestSharedPrefixLength:
    def test_identical(self):
        assert shared_prefix_length(12345, 12345) == 32

    def test_top_bit_differs(self):
        assert shared_prefix_length(0, 0x80000000) == 0

    def test_slash16(self):
        a = ip_to_int("10.1.2.3")
        b = ip_to_int("10.1.200.200")
        assert shared_prefix_length(a, b) == 16

    def test_vectorised(self):
        a = np.array([0, 0x80000000, 12345], dtype=np.uint32)
        b = np.array([1, 0x80000001, 12345], dtype=np.uint32)
        assert shared_prefix_length(a, b).tolist() == [31, 31, 32]


class TestAnonymizer:
    def test_key_validation(self):
        with pytest.raises(ValueError):
            PrefixPreservingAnonymizer(-1)
        with pytest.raises(ValueError):
            PrefixPreservingAnonymizer(2**64)

    def test_deterministic(self):
        a = PrefixPreservingAnonymizer(42)
        b = PrefixPreservingAnonymizer(42)
        arr = np.arange(1000, dtype=np.uint32) * 7919
        assert np.array_equal(a.anonymize(arr), b.anonymize(arr))

    def test_key_matters(self):
        arr = np.arange(1000, dtype=np.uint32) * 7919
        a = PrefixPreservingAnonymizer(1).anonymize(arr)
        b = PrefixPreservingAnonymizer(2).anonymize(arr)
        assert not np.array_equal(a, b)

    def test_bijective_on_sample(self):
        gen = np.random.default_rng(0)
        arr = gen.integers(0, 2**32, 50_000, dtype=np.uint32)
        arr = np.unique(arr)
        out = PrefixPreservingAnonymizer(7).anonymize(arr)
        assert np.unique(out).size == arr.size

    def test_addresses_actually_change(self):
        gen = np.random.default_rng(1)
        arr = gen.integers(0, 2**32, 10_000, dtype=np.uint32)
        out = PrefixPreservingAnonymizer(7).anonymize(arr)
        assert np.mean(out == arr) < 0.01

    @given(addresses, addresses, st.integers(min_value=0, max_value=2**64 - 1))
    @settings(max_examples=60, deadline=None)
    def test_prefix_preservation_property(self, a, b, key):
        """THE invariant: common-prefix length is exactly preserved."""
        anonymizer = PrefixPreservingAnonymizer(key)
        before = shared_prefix_length(a, b)
        after = shared_prefix_length(
            anonymizer.anonymize_one(a), anonymizer.anonymize_one(b)
        )
        assert after == before

    def test_slash16_structure_survives(self):
        """All addresses of one /16 land in one /16 after anonymisation."""
        base = ip_to_int("100.64.0.0")
        arr = (base + np.arange(0, 65536, 257, dtype=np.uint32))
        out = PrefixPreservingAnonymizer(99).anonymize(arr)
        assert np.unique(out >> np.uint32(16)).size == 1


class TestRoundUnrollRegression:
    """The broadcast (32, n) implementation must match the round loop."""

    @staticmethod
    def _reference_anonymize(
        anonymizer: PrefixPreservingAnonymizer, addresses: np.ndarray
    ) -> np.ndarray:
        """Original bit-at-a-time implementation, kept as the executable spec."""
        addresses = np.asarray(addresses, dtype=np.uint32)
        out = np.zeros(addresses.shape, dtype=np.uint32)
        prefix = np.zeros(addresses.shape, dtype=np.uint64)
        for bit_index in range(32):
            shift = np.uint32(31 - bit_index)
            in_bit = (addresses >> shift) & np.uint32(1)
            flip = anonymizer._prf_bit(prefix, bit_index)
            out |= ((in_bit ^ flip) << shift).astype(np.uint32)
            prefix = (prefix << np.uint64(1)) | in_bit.astype(np.uint64)
        return out

    def test_bit_identical_to_round_loop(self):
        gen = np.random.default_rng(2024)
        # More than one _CHUNK so the blockwise path is exercised, plus the
        # bit-pattern edge cases.
        arr = np.concatenate([
            np.array([0, 1, 2**31, 2**32 - 1, 0x7FFFFFFF, 0x55555555],
                     dtype=np.uint32),
            gen.integers(0, 2**32, 150_000, dtype=np.uint32),
        ])
        for key in (0, 7, 2**64 - 1):
            anonymizer = PrefixPreservingAnonymizer(key)
            assert np.array_equal(
                anonymizer.anonymize(arr),
                self._reference_anonymize(anonymizer, arr),
            )

    def test_scalar_and_empty_shapes(self):
        anonymizer = PrefixPreservingAnonymizer(3)
        assert anonymizer.anonymize(np.empty(0, dtype=np.uint32)).size == 0
        single = anonymizer.anonymize_one(ip_to_int("192.0.2.1"))
        assert 0 <= single < 2**32


class TestBatchAnonymisation:
    def test_sources_rewritten_destinations_kept(self, sim2020):
        subset = sim2020.batch[0:5000]
        anonymizer = PrefixPreservingAnonymizer(5)
        out = anonymizer.anonymize_batch(subset)
        assert not np.array_equal(out.src_ip, subset.src_ip)
        assert np.array_equal(out.dst_ip, subset.dst_ip)
        assert np.array_equal(out.seq, subset.seq)

    def test_both_sides(self, sim2020):
        subset = sim2020.batch[0:2000]
        out = PrefixPreservingAnonymizer(5).anonymize_batch(
            subset, sources_only=False
        )
        assert not np.array_equal(out.dst_ip, subset.dst_ip)

    def test_scan_structure_survives(self, sim2020):
        """Campaign identification on anonymised data finds the same scans
        (sources renamed, statistics identical)."""
        from repro.core.campaigns import identify_scans
        subset = sim2020.batch
        anonymised = PrefixPreservingAnonymizer(5).anonymize_batch(subset)
        a = identify_scans(subset)
        b = identify_scans(anonymised)
        assert len(a) == len(b)
        assert sorted(a.packets.tolist()) == sorted(b.packets.tolist())
