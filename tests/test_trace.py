"""Unit tests for the .rtrace serialisation format."""

import struct

import numpy as np
import pytest

from repro.telescope import (
    MappedTraceReader,
    PacketBatch,
    SynPacket,
    TraceFormatError,
    TraceReader,
    TraceWriter,
    iter_trace,
    mmap_supported,
    open_trace_reader,
    read_trace,
    write_trace,
)
from repro.telescope import trace as trace_module


def sample_batch(n=100):
    gen = np.random.default_rng(0)
    return PacketBatch(
        time=np.sort(gen.uniform(0, 1000, n)),
        src_ip=gen.integers(0, 2**32, n, dtype=np.uint32),
        dst_ip=gen.integers(0, 2**32, n, dtype=np.uint32),
        src_port=gen.integers(0, 2**16, n, dtype=np.uint16),
        dst_port=gen.integers(0, 2**16, n, dtype=np.uint16),
        ip_id=gen.integers(0, 2**16, n, dtype=np.uint16),
        seq=gen.integers(0, 2**32, n, dtype=np.uint32),
        ttl=gen.integers(0, 256, n).astype(np.uint8),
        window=gen.integers(0, 2**16, n, dtype=np.uint16),
        flags=np.full(n, 2, dtype=np.uint8),
    )


class TestRoundTrip:
    def test_roundtrip_content(self, tmp_path):
        batch = sample_batch()
        path = tmp_path / "t.rtrace"
        written = write_trace(path, batch, meta={"year": 2020})
        assert written == len(batch)
        loaded, meta = read_trace(path)
        assert meta == {"year": 2020}
        assert len(loaded) == len(batch)
        for name, col in batch.columns().items():
            assert np.array_equal(loaded.columns()[name], col), name

    def test_roundtrip_empty(self, tmp_path):
        path = tmp_path / "empty.rtrace"
        write_trace(path, PacketBatch.empty())
        loaded, meta = read_trace(path)
        assert len(loaded) == 0 and meta == {}

    def test_chunked_write(self, tmp_path):
        batch = sample_batch(250)
        path = tmp_path / "c.rtrace"
        write_trace(path, batch, chunk_size=100)
        chunks = list(iter_trace(path))
        assert [len(c) for c in chunks] == [100, 100, 50]
        merged = PacketBatch.concat(chunks)
        assert np.array_equal(merged.seq, batch.seq)

    def test_bad_chunk_size(self, tmp_path):
        with pytest.raises(ValueError):
            write_trace(tmp_path / "x.rtrace", sample_batch(), chunk_size=0)

    def test_streaming_writer(self, tmp_path):
        path = tmp_path / "s.rtrace"
        with TraceWriter(path, meta={"k": 1}) as w:
            w.write(sample_batch(10))
            w.write(PacketBatch.empty())  # skipped, not an error
            w.write(sample_batch(5))
            assert w.packets_written == 15
        loaded, _ = read_trace(path)
        assert len(loaded) == 15

    def test_writer_requires_context(self, tmp_path):
        w = TraceWriter(tmp_path / "x.rtrace")
        with pytest.raises(RuntimeError):
            w.write(sample_batch(1))


class TestFormatErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.rtrace"
        path.write_bytes(b"NOTTRACE" + b"\x00" * 10)
        with pytest.raises(TraceFormatError):
            with TraceReader(path) as r:
                list(r)

    def test_version_mismatch_names_both_versions_and_path(self, tmp_path):
        # Same RTRACE family, different revision: the error must name the
        # found version, the supported version, and the offending file.
        path = tmp_path / "old.rtrace"
        path.write_bytes(b"RTRACE99" + b"\x00" * 10)
        with pytest.raises(TraceFormatError) as excinfo:
            with TraceReader(path) as r:
                list(r)
        message = str(excinfo.value)
        assert "RTRACE99" in message
        assert "RTRACE01" in message
        assert str(path) in message

    def test_truncated_meta(self, tmp_path):
        path = tmp_path / "trunc.rtrace"
        path.write_bytes(b"RTRACE01" + struct.pack("<I", 100) + b"{}")
        with pytest.raises(TraceFormatError):
            with TraceReader(path) as r:
                list(r)

    def test_truncated_chunk(self, tmp_path):
        good = tmp_path / "good.rtrace"
        write_trace(good, sample_batch(50))
        data = good.read_bytes()
        bad = tmp_path / "bad.rtrace"
        bad.write_bytes(data[: len(data) // 2])
        with pytest.raises(TraceFormatError):
            with TraceReader(bad) as r:
                list(r)

    def test_missing_terminator_tolerated(self, tmp_path):
        # A file ending exactly at a chunk boundary (no 0 sentinel) still reads.
        good = tmp_path / "good.rtrace"
        write_trace(good, sample_batch(10))
        data = good.read_bytes()
        trimmed = tmp_path / "trimmed.rtrace"
        trimmed.write_bytes(data[:-4])
        loaded, _ = read_trace(trimmed)
        assert len(loaded) == 10


class TestTruncationDiagnostics:
    def test_error_reports_offset_and_batch(self, tmp_path):
        good = tmp_path / "good.rtrace"
        write_trace(good, sample_batch(50), chunk_size=20)
        data = good.read_bytes()
        bad = tmp_path / "bad.rtrace"
        # Cut inside the *second* chunk's columns.
        header = 8 + 4 + 2  # magic + meta_len + "{}"
        chunk_bytes = 4 + 20 * 30
        bad.write_bytes(data[: header + chunk_bytes + chunk_bytes // 2])
        with pytest.raises(TraceFormatError) as excinfo:
            with TraceReader(bad) as r:
                list(r)
        message = str(excinfo.value)
        assert "byte offset" in message
        assert "batch 1" in message
        assert "bad.rtrace" in message

    def test_non_strict_drops_partial_final_batch(self, tmp_path):
        good = tmp_path / "good.rtrace"
        write_trace(good, sample_batch(50), chunk_size=20)
        data = good.read_bytes()
        bad = tmp_path / "bad.rtrace"
        header = 8 + 4 + 2
        chunk_bytes = 4 + 20 * 30
        bad.write_bytes(data[: header + 2 * chunk_bytes + 100])
        with TraceReader(bad, strict=False) as r:
            chunks = list(r)
            assert r.truncated
        assert [len(c) for c in chunks] == [20, 20]

    def test_non_strict_partial_header(self, tmp_path):
        good = tmp_path / "good.rtrace"
        write_trace(good, sample_batch(20))
        data = good.read_bytes()
        bad = tmp_path / "bad.rtrace"
        bad.write_bytes(data[:-2])  # mid-terminator: 2 of 4 header bytes
        with TraceReader(bad, strict=False) as r:
            chunks = list(r)
            assert r.truncated
        assert [len(c) for c in chunks] == [20]

    def test_non_strict_still_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "bad.rtrace"
        path.write_bytes(b"NOTTRACE" + b"\x00" * 16)
        with pytest.raises(TraceFormatError):
            with TraceReader(path, strict=False) as r:
                list(r)

    def test_read_trace_strict_flag(self, tmp_path):
        good = tmp_path / "good.rtrace"
        write_trace(good, sample_batch(50), chunk_size=20)
        data = good.read_bytes()
        bad = tmp_path / "bad.rtrace"
        bad.write_bytes(data[: len(data) - 200])
        with pytest.raises(TraceFormatError):
            read_trace(bad)
        loaded, _ = read_trace(bad, strict=False)
        assert len(loaded) == 40  # complete chunks only


class TestSkipPackets:
    def test_skip_whole_chunks(self, tmp_path):
        batch = sample_batch(100)
        path = tmp_path / "t.rtrace"
        write_trace(path, batch, chunk_size=30)
        with TraceReader(path) as r:
            remainder = r.skip_packets(60)
            assert len(remainder) == 0
            rest = PacketBatch.concat([remainder] + list(r))
        assert np.array_equal(rest.time, batch.time[60:])

    def test_skip_into_mid_chunk(self, tmp_path):
        batch = sample_batch(100)
        path = tmp_path / "t.rtrace"
        write_trace(path, batch, chunk_size=30)
        with TraceReader(path) as r:
            remainder = r.skip_packets(45)
            assert len(remainder) == 15
            rest = PacketBatch.concat([remainder] + list(r))
        assert np.array_equal(rest.time, batch.time[45:])
        assert np.array_equal(rest.src_ip, batch.src_ip[45:])

    def test_skip_zero(self, tmp_path):
        batch = sample_batch(10)
        path = tmp_path / "t.rtrace"
        write_trace(path, batch)
        with TraceReader(path) as r:
            assert len(r.skip_packets(0)) == 0
            assert len(PacketBatch.concat(list(r))) == 10

    def test_skip_beyond_end(self, tmp_path):
        path = tmp_path / "t.rtrace"
        write_trace(path, sample_batch(10))
        with TraceReader(path) as r:
            with pytest.raises(ValueError):
                r.skip_packets(11)

    def test_skip_negative(self, tmp_path):
        path = tmp_path / "t.rtrace"
        write_trace(path, sample_batch(10))
        with TraceReader(path) as r:
            with pytest.raises(ValueError):
                r.skip_packets(-1)


class TestMappedReader:
    """The zero-copy mmap reader must be a drop-in for TraceReader."""

    @pytest.mark.parametrize("n,chunk_size", [(1, 10), (100, 100), (250, 100),
                                              (250, 30), (1000, 256)])
    def test_equivalent_to_buffered(self, tmp_path, n, chunk_size):
        batch = sample_batch(n)
        path = tmp_path / "t.rtrace"
        write_trace(path, batch, meta={"year": 2020}, chunk_size=chunk_size)
        with TraceReader(path) as buffered:
            expected = list(buffered)
            expected_meta = buffered.meta
        with MappedTraceReader(path) as mapped:
            assert mapped.meta == expected_meta
            assert mapped.total_packets == n
            chunks = list(mapped)
        assert [len(c) for c in chunks] == [len(c) for c in expected]
        for got, want in zip(chunks, expected):
            for name, col in want.columns().items():
                assert np.array_equal(got.columns()[name], col), name

    def test_views_are_zero_copy_and_readonly(self, tmp_path):
        path = tmp_path / "t.rtrace"
        write_trace(path, sample_batch(64))
        with MappedTraceReader(path) as mapped:
            (chunk,) = list(mapped)
            for name, col in chunk.columns().items():
                assert not col.flags.writeable, name
                assert not col.flags.owndata, name  # a view into the map
                with pytest.raises(ValueError):
                    col[0] = 0

    def test_views_survive_reader_close(self, tmp_path):
        batch = sample_batch(64)
        path = tmp_path / "t.rtrace"
        write_trace(path, batch)
        with MappedTraceReader(path) as mapped:
            (chunk,) = list(mapped)
        # The context has exited; the mapping is released lazily, so the
        # views stay readable.
        assert np.array_equal(chunk.seq, batch.seq)

    def test_empty_capture(self, tmp_path):
        path = tmp_path / "empty.rtrace"
        write_trace(path, PacketBatch.empty())
        with MappedTraceReader(path) as mapped:
            assert mapped.total_packets == 0
            assert list(mapped) == []

    def test_skip_via_index(self, tmp_path):
        batch = sample_batch(100)
        path = tmp_path / "t.rtrace"
        write_trace(path, batch, chunk_size=30)
        # Whole-chunk boundary.
        with MappedTraceReader(path) as mapped:
            remainder = mapped.skip_packets(60)
            assert len(remainder) == 0
            rest = PacketBatch.concat([remainder] + list(mapped))
        assert np.array_equal(rest.time, batch.time[60:])
        # Mid-chunk: the remainder is a zero-copy view.
        with MappedTraceReader(path) as mapped:
            remainder = mapped.skip_packets(45)
            assert len(remainder) == 15
            assert not remainder.time.flags.owndata
            rest = PacketBatch.concat([remainder] + list(mapped))
        assert np.array_equal(rest.src_ip, batch.src_ip[45:])
        # Zero, beyond-end and negative match the buffered reader.
        with MappedTraceReader(path) as mapped:
            assert len(mapped.skip_packets(0)) == 0
            assert len(PacketBatch.concat(list(mapped))) == 100
        with MappedTraceReader(path) as mapped:
            with pytest.raises(ValueError):
                mapped.skip_packets(101)
            with pytest.raises(ValueError):
                mapped.skip_packets(-1)

    def test_bad_magic_and_version_errors(self, tmp_path):
        bad = tmp_path / "bad.rtrace"
        bad.write_bytes(b"NOTTRACE" + b"\x00" * 16)
        with pytest.raises(TraceFormatError):
            with MappedTraceReader(bad):
                pass
        old = tmp_path / "old.rtrace"
        old.write_bytes(b"RTRACE99" + b"\x00" * 16)
        with pytest.raises(TraceFormatError) as excinfo:
            with MappedTraceReader(old):
                pass
        message = str(excinfo.value)
        assert "RTRACE99" in message and "RTRACE01" in message

    def test_empty_file_is_bad_magic(self, tmp_path):
        empty = tmp_path / "zero.rtrace"
        empty.write_bytes(b"")
        with pytest.raises(TraceFormatError) as excinfo:
            with MappedTraceReader(empty):
                pass
        assert "bad magic" in str(excinfo.value)

    def test_strict_truncated_chunk_raises(self, tmp_path):
        good = tmp_path / "good.rtrace"
        write_trace(good, sample_batch(50), chunk_size=20)
        data = good.read_bytes()
        bad = tmp_path / "bad.rtrace"
        header = 8 + 4 + 2
        chunk_bytes = 4 + 20 * 30
        bad.write_bytes(data[: header + chunk_bytes + chunk_bytes // 2])
        with pytest.raises(TraceFormatError) as excinfo:
            with MappedTraceReader(bad):
                pass
        message = str(excinfo.value)
        assert "byte offset" in message and "batch 1" in message

    def test_non_strict_drops_partial_final_chunk(self, tmp_path):
        good = tmp_path / "good.rtrace"
        write_trace(good, sample_batch(50), chunk_size=20)
        data = good.read_bytes()
        bad = tmp_path / "bad.rtrace"
        header = 8 + 4 + 2
        chunk_bytes = 4 + 20 * 30
        bad.write_bytes(data[: header + 2 * chunk_bytes + 100])
        with MappedTraceReader(bad, strict=False) as mapped:
            chunks = list(mapped)
            assert mapped.truncated
        assert [len(c) for c in chunks] == [20, 20]
        # Same packets as the buffered reader's non-strict read.
        with TraceReader(bad, strict=False) as buffered:
            assert [len(c) for c in buffered] == [20, 20]

    def test_missing_terminator_tolerated(self, tmp_path):
        good = tmp_path / "good.rtrace"
        write_trace(good, sample_batch(10))
        trimmed = tmp_path / "trimmed.rtrace"
        trimmed.write_bytes(good.read_bytes()[:-4])
        with MappedTraceReader(trimmed) as mapped:
            assert sum(len(c) for c in mapped) == 10


class TestOpenTraceReader:
    def test_auto_picks_mapped_when_supported(self, tmp_path):
        path = tmp_path / "t.rtrace"
        write_trace(path, sample_batch(10))
        reader = open_trace_reader(path)
        expected = MappedTraceReader if mmap_supported() else TraceReader
        assert isinstance(reader, expected)

    def test_forced_buffered(self, tmp_path):
        path = tmp_path / "t.rtrace"
        write_trace(path, sample_batch(10))
        with open_trace_reader(path, use_mmap=False) as reader:
            assert isinstance(reader, TraceReader)
            assert sum(len(c) for c in reader) == 10

    def test_fallback_when_mmap_unavailable(self, tmp_path, monkeypatch):
        """Platforms without mmap transparently get the buffered reader."""
        path = tmp_path / "t.rtrace"
        write_trace(path, sample_batch(10))
        monkeypatch.setattr(trace_module, "_mmap", None)
        assert not mmap_supported()
        with open_trace_reader(path) as reader:  # auto falls back
            assert isinstance(reader, TraceReader)
            assert sum(len(c) for c in reader) == 10
        with pytest.raises(TraceFormatError):  # forcing mmap now fails
            open_trace_reader(path, use_mmap=True)
