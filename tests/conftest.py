"""Shared fixtures.

Expensive artefacts (registry, simulated year, analysed period) are
session-scoped: they are deterministic, read-only in tests, and rebuilding
them per test would dominate the suite's runtime.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import analyze_simulation
from repro.enrichment import (
    KnownScannerFeed,
    ScannerClassifier,
    build_default_registry,
)
from repro.simulation import TelescopeWorld
from repro.telescope import Telescope


@pytest.fixture(scope="session")
def registry():
    return build_default_registry()


@pytest.fixture(scope="session")
def feed(registry):
    return KnownScannerFeed(registry)


@pytest.fixture(scope="session")
def classifier(registry, feed):
    return ScannerClassifier(registry, feed)


@pytest.fixture(scope="session")
def telescope():
    return Telescope.paper_telescope(rng=11)


@pytest.fixture()
def world(telescope, registry):
    """A fresh world per test.

    Cheap to build, and keeps each test's mutable generator state (caches,
    recurrence pools) isolated; the simulated *captures* themselves are
    order-independent either way, since every year's stream is re-keyed from
    ``(world seed, year)`` alone.
    """
    return TelescopeWorld(telescope=telescope, registry=registry, rng=11)


@pytest.fixture(scope="session")
def sim2020(telescope, registry):
    """A small but fully featured simulated 2020 period.

    Built with a dedicated world so the realisation is identical no matter
    which tests ran before.  The seed picks a realisation where the suite's
    statistical claims (e.g. port 443's institutional skew) hold with a
    healthy margin at this small simulation scale.
    """
    dedicated = TelescopeWorld(telescope=telescope, registry=registry, rng=12)
    return dedicated.simulate_year(2020, days=10, max_packets=120_000,
                                   min_scans=300)


@pytest.fixture(scope="session")
def analysis2020(sim2020):
    return analyze_simulation(sim2020)


@pytest.fixture()
def rng():
    return np.random.default_rng(123)
