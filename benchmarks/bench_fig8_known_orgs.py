"""Figure 8 — port coverage of well-known Internet-wide scanning projects
(2024): Censys, Palo Alto and Onyphe cover the full range; Shadowserver and
Rapid7 do not; universities sit at a handful of ports.
"""

import numpy as np

import paper_reference as ref
from conftest import emit
from repro._util.fmt import format_table
from repro.core.institutions import known_scanner_share, org_footprints
from repro.enrichment import profile_by_name


def test_fig8_org_port_coverage(rich_recent_years, benchmark, capsys):
    _, analysis = rich_recent_years[2024]

    footprints = benchmark.pedantic(
        lambda: org_footprints(analysis), rounds=1, iterations=1
    )
    assert footprints

    rows = []
    for fp in sorted(footprints.values(), key=lambda f: -f.port_coverage):
        expected = profile_by_name(fp.organisation).coverage_in(2024)
        rows.append([
            fp.organisation[:28], fp.sources, fp.scans,
            fp.distinct_ports,
            f"{fp.port_coverage * 100:.1f}%",
            f"{expected * 100:.1f}%",
        ])
    share = known_scanner_share(analysis)
    text = "\n".join([
        "", "=" * 78,
        "FIGURE 8 — known-scanner port coverage, 2024 (measured vs profile)",
        "=" * 78,
        format_table(["organisation", "ips", "scans", "ports",
                      "coverage", "profile"], rows),
        "",
        f"Known scanners: {share.organisations} orgs, "
        f"{share.source_share:.2%} of sources, "
        f"{share.packet_share:.1%} of traffic "
        f"(paper 2024: {ref.KNOWN_SCANNER_SHARE[2024][0]:.2%} / "
        f"{ref.KNOWN_SCANNER_SHARE[2024][1]:.1%})",
    ])
    emit(capsys, text)

    coverage = {fp.organisation: fp.port_coverage for fp in footprints.values()}
    # Full-range scanners beat the partial ones, which beat universities.
    for full in ref.FULL_RANGE_ORGS_2024 & set(coverage):
        for partial in ref.PARTIAL_RANGE_ORGS_2024 & set(coverage):
            assert coverage[full] > coverage[partial], (full, partial)
    for uni in ("University of Michigan", "UCSD", "TU Munich"):
        if uni in coverage:
            assert coverage[uni] < 0.01
    # Aggregate share shape: tiny source share, large traffic share.
    assert share.source_share < 0.05
    assert share.packet_share > 0.2
