"""§7 'Comparing vantage points' — the future-work experiment the paper
could not run: the same campaigns observed from a second telescope.

Checks that the §3.4 estimator family is vantage-invariant for an
equal-sized telescope elsewhere in the space, and quantifies the
vantage-size bias (a smaller telescope under the same criteria loses the
small campaigns).
"""

import numpy as np

from conftest import emit
from repro._util.fmt import format_table
from repro.core import CampaignCriteria, identify_scans
from repro.simulation.vantage import second_vantage
from repro.telescope import CidrBlock, Telescope


def test_vantage_comparison(sims, benchmark, capsys):
    sim = sims[2020]
    same_size = Telescope.from_blocks(
        [CidrBlock.parse("198.18.0.0/15")], population=0.5458, rng=77
    )
    quarter = Telescope.from_blocks(
        [CidrBlock.parse("198.51.0.0/16")], population=0.27, rng=78
    )

    def measure():
        out = {}
        for label, telescope in (("same-size", same_size),
                                 ("quarter-size", quarter)):
            batch = second_vantage(sim, telescope, rng=55)
            criteria = CampaignCriteria(telescope_size=telescope.size)
            out[label] = identify_scans(batch, criteria=criteria)
        return out

    views = benchmark.pedantic(measure, rounds=1, iterations=1)
    primary = identify_scans(sim.batch)

    rows = [["primary (paper layout)", sim.telescope.size, len(primary),
             f"{np.median(primary.speed_pps):,.0f}"]]
    for label, telescope in (("same-size", same_size),
                             ("quarter-size", quarter)):
        view = views[label]
        rows.append([label, telescope.size, len(view),
                     f"{np.median(view.speed_pps):,.0f}"])
    emit(capsys, "\n".join([
        "", "=" * 78,
        "§7 — the same 2020 campaigns from three vantage points",
        "=" * 78,
        format_table(["vantage", "monitored", "scans found",
                      "median speed (pps)"], rows),
        "",
        "Same-size vantage: compatible results (the estimators normalise",
        "through telescope size). Quarter-size vantage: small campaigns",
        "fall below the detection thresholds — the paper's §3.4 caveat.",
    ]))

    same = views["same-size"]
    quarter_view = views["quarter-size"]
    # Equal-size vantage agrees on scan counts and median speed.
    assert abs(len(same) - len(primary)) < 0.25 * len(primary)
    assert 0.6 < np.median(same.speed_pps) / np.median(primary.speed_pps) < 1.6
    # Tool mix agrees for every major tool.
    a, b = primary.tool_shares_by_scans(), same.tool_shares_by_scans()
    for tool, share in a.items():
        if share > 0.1:
            assert abs(b.get(tool, 0) - share) < 0.15, tool
    # The small vantage undercounts.
    assert len(quarter_view) < 0.7 * len(primary)
