"""Shared benchmark fixtures.

A full simulated decade is expensive, so it is built once per benchmark
session and shared by every table/figure benchmark.  The scales used here
(21-day periods, ≤400 k packets per year) keep the whole decade under a
couple of minutes while leaving every analysis statistically meaningful.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.core import analyze_simulation
from repro.simulation import ALL_YEARS, TelescopeWorld

#: Environment knobs so CI smoke jobs can shrink / parallelise / cache the
#: decade without editing this file:
#:   REPRO_BENCH_DAYS / REPRO_BENCH_MAX_PACKETS — period scale;
#:   REPRO_BENCH_WORKERS — process-pool size for the decade build (0=serial);
#:   REPRO_BENCH_CACHE — capture-cache directory (unset disables caching).
BENCH_DAYS = int(os.environ.get("REPRO_BENCH_DAYS", 21))
BENCH_MAX_PACKETS = int(os.environ.get("REPRO_BENCH_MAX_PACKETS", 400_000))
BENCH_MIN_SCANS = 600
BENCH_SEED = 2024
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", 0))
BENCH_CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE") or None


@pytest.fixture(scope="session")
def world():
    return TelescopeWorld(rng=BENCH_SEED)


@pytest.fixture(scope="session")
def capture_cache():
    """Session capture cache, or ``None`` when REPRO_BENCH_CACHE is unset."""
    if BENCH_CACHE_DIR is None:
        return None
    from repro.exec import CaptureCache

    return CaptureCache(BENCH_CACHE_DIR)


@pytest.fixture(scope="session")
def decade(world, capture_cache):
    """year -> (SimulationResult, PeriodAnalysis) for all ten study years."""
    sims = world.simulate_years(
        ALL_YEARS, days=BENCH_DAYS, max_packets=BENCH_MAX_PACKETS,
        min_scans=BENCH_MIN_SCANS, workers=BENCH_WORKERS, cache=capture_cache,
    )
    return {year: (sim, analyze_simulation(sim)) for year, sim in sims.items()}


@pytest.fixture(scope="session")
def analyses(decade):
    return {year: analysis for year, (_, analysis) in decade.items()}


@pytest.fixture(scope="session")
def sims(decade):
    return {year: sim for year, (sim, _) in decade.items()}


@pytest.fixture(scope="session")
def rich_recent_years(world):
    """Higher-budget 2023/2024 periods for the port-coverage figures.

    The known-scanner footprints of Figures 8–10 need enough institutional
    packets that full-range organisations can actually touch all 65,536
    ports; the shared decade's budget is too small for that.
    """
    out = {}
    for year in (2023, 2024):
        sim = world.simulate_year(
            year, days=BENCH_DAYS, max_packets=1_000_000,
            min_scans=BENCH_MIN_SCANS,
        )
        out[year] = (sim, analyze_simulation(sim))
    return out


def emit(capsys, text: str) -> None:
    """Print a benchmark report section past pytest's capture."""
    with capsys.disabled():
        print(text)
