"""Shared benchmark fixtures.

A full simulated decade is expensive, so it is built once per benchmark
session and shared by every table/figure benchmark.  The scales used here
(21-day periods, ≤400 k packets per year) keep the whole decade under a
couple of minutes while leaving every analysis statistically meaningful.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.core import analyze_simulation
from repro.simulation import ALL_YEARS, TelescopeWorld

BENCH_DAYS = 21
BENCH_MAX_PACKETS = 400_000
BENCH_MIN_SCANS = 600
BENCH_SEED = 2024


@pytest.fixture(scope="session")
def world():
    return TelescopeWorld(rng=BENCH_SEED)


@pytest.fixture(scope="session")
def decade(world):
    """year -> (SimulationResult, PeriodAnalysis) for all ten study years."""
    out = {}
    for year in ALL_YEARS:
        sim = world.simulate_year(
            year, days=BENCH_DAYS, max_packets=BENCH_MAX_PACKETS,
            min_scans=BENCH_MIN_SCANS,
        )
        out[year] = (sim, analyze_simulation(sim))
    return out


@pytest.fixture(scope="session")
def analyses(decade):
    return {year: analysis for year, (_, analysis) in decade.items()}


@pytest.fixture(scope="session")
def sims(decade):
    return {year: sim for year, (sim, _) in decade.items()}


@pytest.fixture(scope="session")
def rich_recent_years(world):
    """Higher-budget 2023/2024 periods for the port-coverage figures.

    The known-scanner footprints of Figures 8–10 need enough institutional
    packets that full-range organisations can actually touch all 65,536
    ports; the shared decade's budget is too small for that.
    """
    out = {}
    for year in (2023, 2024):
        sim = world.simulate_year(
            year, days=BENCH_DAYS, max_packets=1_000_000,
            min_scans=BENCH_MIN_SCANS,
        )
        out[year] = (sim, analyze_simulation(sim))
    return out


def emit(capsys, text: str) -> None:
    """Print a benchmark report section past pytest's capture."""
    with capsys.disabled():
        print(text)
