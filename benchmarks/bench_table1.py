"""Table 1 — scan volume, top ports, tools per year (2015–2024).

Regenerates every row block of the paper's Table 1 from the simulated decade
and prints measured values (projected back to real-world volume through the
simulation scales) next to the paper's published ones.
"""

import numpy as np

import paper_reference as ref
from conftest import emit
from repro._util.fmt import format_count, format_table
from repro.core import summarize_period
from repro.reporting import render_table1
from repro.scanners import Tool
from repro.simulation import ALL_YEARS


def test_table1(decade, benchmark, capsys):
    summaries = {}

    def build():
        return {year: summarize_period(analysis)
                for year, (_, analysis) in decade.items()}

    summaries = benchmark.pedantic(build, rounds=1, iterations=1)

    lines = ["", "=" * 78, "TABLE 1 — ecosystem per year (measured, simulation scale)", "=" * 78]
    lines.append(render_table1(summaries))

    # Projected volumes against the paper.
    rows = []
    for year in ALL_YEARS:
        sim, _ = decade[year]
        measured_ppd = len(decade[year][1].study_batch) / sim.days / sim.packet_scale
        measured_spm = summaries[year].scans_per_month / sim.scan_scale
        rows.append([
            year,
            format_count(ref.PACKETS_PER_DAY[year]),
            format_count(measured_ppd),
            format_count(ref.SCANS_PER_MONTH[year]),
            format_count(measured_spm),
        ])
    lines.append("")
    lines.append("Projected volumes vs paper:")
    lines.append(format_table(
        ["year", "pkts/day paper", "pkts/day measured",
         "scans/mo paper", "scans/mo measured"], rows))

    # Tool-share comparison.
    tool_rows = []
    for year in ALL_YEARS:
        shares = summaries[year].tool_shares_by_scans
        for tool in (Tool.MASSCAN, Tool.NMAP, Tool.MIRAI, Tool.ZMAP):
            tool_rows.append([
                year, tool.value,
                f"{ref.TOOL_SHARES_BY_SCANS[year].get(tool, 0) * 100:.1f}%",
                f"{shares.get(tool, 0) * 100:.1f}%",
            ])
    lines.append("")
    lines.append("Tool shares by scans vs paper:")
    lines.append(format_table(["year", "tool", "paper", "measured"], tool_rows))

    # Rank-overlap of the top-port lists.
    overlap_rows = []
    for year in ALL_YEARS:
        measured = [p.port for p in summaries[year].top_ports_by_packets]
        expected = ref.TOP_PORTS_BY_PACKETS[year]
        overlap = len(set(measured) & set(expected))
        measured_src = [p.port for p in summaries[year].top_ports_by_sources]
        overlap_src = len(set(measured_src) & set(ref.TOP_PORTS_BY_SOURCES[year]))
        overlap_rows.append([year, f"{overlap}/5", f"{overlap_src}/5"])
    lines.append("")
    lines.append("Top-5 port overlap with paper (by packets / by sources):")
    lines.append(format_table(["year", "packets", "sources"], overlap_rows))
    emit(capsys, "\n".join(lines))

    # Shape assertions: volumes within 2x, decent port-rank overlap.
    for year in ALL_YEARS:
        sim, _ = decade[year]
        ppd = len(decade[year][1].study_batch) / sim.days / sim.packet_scale
        assert 0.4 * ref.PACKETS_PER_DAY[year] < ppd < 2.2 * ref.PACKETS_PER_DAY[year]
        measured = {p.port for p in summaries[year].top_ports_by_sources}
        assert len(measured & set(ref.TOP_PORTS_BY_SOURCES[year])) >= 3
