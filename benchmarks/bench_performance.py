"""Performance benchmarks of the library itself.

Unlike the table/figure benchmarks (which compare against the paper), these
measure throughput of the hot paths so regressions in the pipeline's own
speed are visible: packet-batch operations, campaign identification,
fingerprinting, enrichment lookups, trace serialisation and anonymisation.
Multiple rounds; pytest-benchmark reports the distribution.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.core.campaigns import identify_scans
from repro.core.fingerprints import ToolFingerprinter
from repro.enrichment import ScannerClassifier
from repro.stream import (
    BatchStreamSource,
    ShardedStreamEngine,
    StreamConfig,
    StreamEngine,
    TraceStreamSource,
)
from repro.telescope import (
    PrefixPreservingAnonymizer,
    read_trace,
    write_trace,
)


@pytest.fixture(scope="module")
def perf_batch(sims):
    """A ~300k-packet capture shared by the throughput benchmarks."""
    return sims[2020].batch


def test_perf_identify_scans(perf_batch, benchmark):
    """Campaign identification over a full capture (§3.4 hot path)."""
    result = benchmark.pedantic(
        lambda: identify_scans(perf_batch), rounds=3, iterations=1
    )
    assert len(result) > 100


def test_perf_stream_identify(perf_batch, benchmark):
    """Streaming campaign identification (repro.stream) at 64k windows.

    The run's throughput and peak RSS land in ``benchmark.extra_info`` so
    ``perf_report.py`` can publish them next to the batch numbers.
    """
    engine = StreamEngine(config=StreamConfig(batch_size=65_536))
    holder = {}

    def work():
        result = engine.run(BatchStreamSource(perf_batch, batch_size=65_536))
        holder["stats"] = result.stats
        return result.scans

    table = benchmark.pedantic(work, rounds=3, iterations=1)
    stats = holder["stats"]
    benchmark.extra_info["packets"] = stats.packets
    benchmark.extra_info["stream_packets_per_s"] = round(stats.packets_per_s)
    benchmark.extra_info["peak_rss_bytes"] = stats.peak_rss_bytes
    benchmark.extra_info["peak_open_session_bytes"] = (
        stats.peak_open_session_bytes
    )
    assert stats.peak_open_session_bytes > 0
    assert len(table) > 100


def test_perf_stream_report(perf_batch, sims, benchmark):
    """The one-pass streaming paper report (identification + incremental
    analyses), the path 'repro-scan stream --report' exercises.

    Records the analysis accumulators' state footprint next to throughput:
    the analyses must stay a bounded add-on, not a second copy of the
    capture.
    """
    from repro.stream import stream_report

    sim = sims[2020]
    classifier = ScannerClassifier(sim.registry)
    holder = {}

    def work():
        result = stream_report(
            BatchStreamSource(perf_batch, batch_size=65_536),
            year=sim.year, days=sim.days,
            batch_size=65_536, classifier=classifier,
        )
        holder["result"] = result
        return result.report

    report = benchmark.pedantic(work, rounds=3, iterations=1)
    stats = holder["result"].stats
    benchmark.extra_info["packets"] = stats.packets
    benchmark.extra_info["stream_packets_per_s"] = round(stats.packets_per_s)
    benchmark.extra_info["analysis_state_bytes"] = stats.analysis_state_bytes
    assert report.scans > 100
    assert 0 < stats.analysis_state_bytes < perf_batch.memory_bytes()


def test_perf_stream_sharded(perf_batch, benchmark, tmp_path):
    """Source-sharded parallel streaming over a memory-mapped trace.

    Times the 4-shard configuration (workers capped at the machine's core
    count) and records the 1-shard reference next to it, so the report
    shows the scaling factor alongside per-shard peak RSS.  The >= 1.7x
    1 -> 4 shard scaling assertion only fires on machines with at least 4
    cores — below that, process-pool parallelism cannot express it and the
    run asserts correctness (bit-identical merge) only.
    """
    import os
    import time

    path = tmp_path / "sharded.rtrace"
    write_trace(path, perf_batch, meta={"year": 2020})
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        cores = os.cpu_count() or 1
    shards = 4
    workers = min(shards, cores)

    def source():
        return TraceStreamSource(path, batch_size=65_536, mmap=True)

    base_engine = ShardedStreamEngine(
        n_shards=1, workers=0, config=StreamConfig(batch_size=65_536)
    )
    started = time.perf_counter()
    base = base_engine.run(source())
    base_s = time.perf_counter() - started

    holder = {}

    def work():
        engine = ShardedStreamEngine(
            n_shards=shards, workers=workers,
            config=StreamConfig(batch_size=65_536),
        )
        result = engine.run(source())
        holder["result"] = result
        return result.scans

    table = benchmark.pedantic(work, rounds=3, iterations=1)
    result = holder["result"]
    sharded_s = max(benchmark.stats.stats.median, 1e-9)
    scaling = base_s / sharded_s
    benchmark.extra_info["shards"] = shards
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["cores"] = cores
    benchmark.extra_info["packets"] = result.stats.packets
    benchmark.extra_info["stream_packets_per_s"] = round(
        result.stats.packets / sharded_s
    )
    benchmark.extra_info["serial_packets_per_s"] = round(
        result.stats.packets / base_s
    )
    benchmark.extra_info["scaling_1_to_4"] = round(scaling, 2)
    benchmark.extra_info["peak_shard_rss_bytes"] = max(
        run.stats.peak_rss_bytes for run in result.shards
    )
    benchmark.extra_info["peak_shard_open_session_bytes"] = max(
        run.stats.peak_open_session_bytes for run in result.shards
    )
    assert len(table) == len(base.scans)
    assert np.array_equal(table.src_ip, base.scans.src_ip)
    assert np.array_equal(table.start, base.scans.start)
    if cores >= 4:
        assert scaling >= 1.7, (
            f"4-shard streaming only {scaling:.2f}x over 1 shard "
            f"({sharded_s:.3f}s vs {base_s:.3f}s on {cores} cores)"
        )


def test_perf_per_packet_fingerprint(perf_batch, benchmark):
    """Vectorised per-packet tool attribution."""
    fingerprinter = ToolFingerprinter()
    tools = benchmark(lambda: fingerprinter.per_packet_tool(perf_batch))
    assert tools.size == len(perf_batch)


def test_perf_enrichment_lookup(perf_batch, sims, benchmark):
    """Registry country lookup over every packet source."""
    classifier = ScannerClassifier(sims[2020].registry)
    countries = benchmark(
        lambda: classifier.registry.country_of(perf_batch.src_ip)
    )
    assert countries.size == len(perf_batch)


def test_perf_batch_sort_and_filter(perf_batch, benchmark):
    """Core column-store transformations."""

    def work():
        ordered = perf_batch.sorted_by_time()
        return ordered.where(ordered.dst_port == 80)

    out = benchmark(work)
    assert len(out) >= 0


def test_perf_trace_roundtrip(perf_batch, benchmark, tmp_path):
    """.rtrace serialisation round trip."""
    path = tmp_path / "perf.rtrace"

    def work():
        write_trace(path, perf_batch, meta={"year": 2020})
        loaded, _ = read_trace(path)
        return loaded

    loaded = benchmark.pedantic(work, rounds=3, iterations=1)
    assert len(loaded) == len(perf_batch)


def test_perf_anonymize(perf_batch, benchmark):
    """Prefix-preserving anonymisation (32 PRF rounds per address)."""
    anonymizer = PrefixPreservingAnonymizer(7)
    out = benchmark.pedantic(
        lambda: anonymizer.anonymize(perf_batch.src_ip), rounds=3, iterations=1
    )
    assert out.size == len(perf_batch)


def test_perf_lint(benchmark, tmp_path):
    """Whole-program lint of src/repro: cold vs summary-cache-warm.

    The timed figure is the warm run (what a developer iterating on one
    file pays); the cold time and the resulting speedup land in
    ``benchmark.extra_info``. The project pass is only worth its cache
    if warm runs skip essentially all parsing, so the speedup is pinned
    at >= 3x.
    """
    import time

    from repro.lint.config import load_config
    from repro.lint.project import lint_repository

    repo_root = Path(__file__).resolve().parent.parent
    config = load_config(repo_root / "pyproject.toml")
    targets = [repo_root / "src" / "repro"]
    cache_dir = tmp_path / "lint-cache"

    start = time.perf_counter()
    cold_diags, _, cold_stats = lint_repository(
        config, paths=targets, cache_dir=cache_dir, use_cache=True
    )
    cold_s = time.perf_counter() - start
    assert cold_stats.cache_hits == 0

    def warm():
        diags, _, stats = lint_repository(
            config, paths=targets, cache_dir=cache_dir, use_cache=True
        )
        assert stats.cache_misses == 0
        return diags

    warm_diags = benchmark.pedantic(warm, rounds=3, iterations=1)
    assert warm_diags == cold_diags

    warm_s = max(benchmark.stats.stats.median, 1e-9)
    speedup = cold_s / warm_s
    benchmark.extra_info["files"] = cold_stats.files
    benchmark.extra_info["cold_s"] = round(cold_s, 4)
    benchmark.extra_info["warm_median_s"] = round(warm_s, 4)
    benchmark.extra_info["warm_speedup"] = round(speedup, 1)
    assert speedup >= 3.0, (
        f"warm lint only {speedup:.1f}x faster than cold "
        f"({warm_s:.3f}s vs {cold_s:.3f}s)"
    )


def test_perf_lint_concurrency(benchmark, tmp_path):
    """Concurrency pass (RPR015-019) over src/repro: cold vs cache-warm.

    Selecting only the lockset rules still runs pass 1 in full (the
    per-file summaries carry the lock/acquisition/spawn index regardless
    of rule selection), so the summary cache has to pay off here exactly
    as it does for the whole rule set: the warm fixpoint solve plus rule
    checks must come in >= 3x under the cold parse-everything run.
    """
    import time

    from repro.lint.config import load_config
    from repro.lint.project import lint_repository

    repo_root = Path(__file__).resolve().parent.parent
    config = load_config(repo_root / "pyproject.toml")
    config.select = ["RPR015", "RPR016", "RPR017", "RPR018", "RPR019"]
    targets = [repo_root / "src" / "repro"]
    cache_dir = tmp_path / "lint-cache"

    start = time.perf_counter()
    cold_diags, _, cold_stats = lint_repository(
        config, paths=targets, cache_dir=cache_dir, use_cache=True
    )
    cold_s = time.perf_counter() - start
    assert cold_stats.cache_hits == 0

    def warm():
        diags, _, stats = lint_repository(
            config, paths=targets, cache_dir=cache_dir, use_cache=True
        )
        assert stats.cache_misses == 0
        return diags

    warm_diags = benchmark.pedantic(warm, rounds=3, iterations=1)
    assert warm_diags == cold_diags
    # The audited tree is expected to be clean: every genuine finding in
    # the serve layer is either fixed or carries an invariant-stating
    # suppression, so a non-empty diff here is a regression.
    assert warm_diags == []

    warm_s = max(benchmark.stats.stats.median, 1e-9)
    speedup = cold_s / warm_s
    benchmark.extra_info["files"] = cold_stats.files
    benchmark.extra_info["cold_s"] = round(cold_s, 4)
    benchmark.extra_info["warm_median_s"] = round(warm_s, 4)
    benchmark.extra_info["warm_speedup"] = round(speedup, 1)
    assert speedup >= 3.0, (
        f"warm concurrency lint only {speedup:.1f}x faster than cold "
        f"({warm_s:.3f}s vs {cold_s:.3f}s)"
    )
