"""Performance benchmarks of the library itself.

Unlike the table/figure benchmarks (which compare against the paper), these
measure throughput of the hot paths so regressions in the pipeline's own
speed are visible: packet-batch operations, campaign identification,
fingerprinting, enrichment lookups, trace serialisation and anonymisation.
Multiple rounds; pytest-benchmark reports the distribution.
"""

import numpy as np
import pytest

from repro.core.campaigns import identify_scans
from repro.core.fingerprints import ToolFingerprinter
from repro.enrichment import ScannerClassifier
from repro.telescope import (
    PrefixPreservingAnonymizer,
    read_trace,
    write_trace,
)


@pytest.fixture(scope="module")
def perf_batch(sims):
    """A ~300k-packet capture shared by the throughput benchmarks."""
    return sims[2020].batch


def test_perf_identify_scans(perf_batch, benchmark):
    """Campaign identification over a full capture (§3.4 hot path)."""
    result = benchmark.pedantic(
        lambda: identify_scans(perf_batch), rounds=3, iterations=1
    )
    assert len(result) > 100


def test_perf_per_packet_fingerprint(perf_batch, benchmark):
    """Vectorised per-packet tool attribution."""
    fingerprinter = ToolFingerprinter()
    tools = benchmark(lambda: fingerprinter.per_packet_tool(perf_batch))
    assert tools.size == len(perf_batch)


def test_perf_enrichment_lookup(perf_batch, sims, benchmark):
    """Registry country lookup over every packet source."""
    classifier = ScannerClassifier(sims[2020].registry)
    countries = benchmark(
        lambda: classifier.registry.country_of(perf_batch.src_ip)
    )
    assert countries.size == len(perf_batch)


def test_perf_batch_sort_and_filter(perf_batch, benchmark):
    """Core column-store transformations."""

    def work():
        ordered = perf_batch.sorted_by_time()
        return ordered.where(ordered.dst_port == 80)

    out = benchmark(work)
    assert len(out) >= 0


def test_perf_trace_roundtrip(perf_batch, benchmark, tmp_path):
    """.rtrace serialisation round trip."""
    path = tmp_path / "perf.rtrace"

    def work():
        write_trace(path, perf_batch, meta={"year": 2020})
        loaded, _ = read_trace(path)
        return loaded

    loaded = benchmark.pedantic(work, rounds=3, iterations=1)
    assert len(loaded) == len(perf_batch)


def test_perf_anonymize(perf_batch, benchmark):
    """Prefix-preserving anonymisation (32 PRF rounds per address)."""
    anonymizer = PrefixPreservingAnonymizer(7)
    out = benchmark.pedantic(
        lambda: anonymizer.anonymize(perf_batch.src_ip), rounds=3, iterations=1
    )
    assert out.size == len(perf_batch)
