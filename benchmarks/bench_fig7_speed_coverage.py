"""Figure 7 — speed and IPv4 coverage per scanner type.

Institutional sources eclipse everyone (≈92× the average speed, the best
coverage); enterprises are the most throttled; hosting outpaces residential.
"""

import numpy as np

import paper_reference as ref
from conftest import emit
from repro._util.fmt import format_rate_bps, format_table
from repro.core.classification import capability_by_type, institutional_speed_ratio
from repro.enrichment.types import SCANNER_TYPE_ORDER, ScannerType


def test_fig7_speed_coverage(analyses, sims, benchmark, capsys):
    analysis = analyses[2022]
    sim = sims[2022]

    caps = benchmark.pedantic(
        lambda: capability_by_type(analysis), rounds=1, iterations=1
    )

    rows = []
    for stype in SCANNER_TYPE_ORDER:
        if stype not in caps:
            continue
        c = caps[stype]
        # Coverage estimates are compressed by the simulation's per-campaign
        # hit cap; rescale for an absolute-coverage column.
        rescaled = min(1.0, c.coverage.mean / sim.coverage_cap)
        rows.append([
            stype.value, c.speed.scans,
            f"{c.speed.median_pps:,.0f}",
            format_rate_bps(c.speed.median_pps * 480),
            f"{c.speed.fraction_over_1000pps * 100:.0f}%",
            f"{c.coverage.mean * 100:.2f}%",
            f"{rescaled * 100:.1f}%",
        ])
    ratio = institutional_speed_ratio(analysis)
    text = "\n".join([
        "", "=" * 78,
        "FIGURE 7 — capability per scanner type (2022)",
        "=" * 78,
        format_table(["type", "scans", "median pps", "median rate",
                      ">1000pps", "mean cov (sim)", "mean cov (rescaled)"],
                     rows),
        "",
        f"Institutional/rest mean-speed ratio: {ratio:.0f}x "
        f"(paper: ~{ref.INSTITUTIONAL_SPEED_RATIO:.0f}x)",
    ])
    emit(capsys, text)

    inst = caps[ScannerType.INSTITUTIONAL]
    res = caps[ScannerType.RESIDENTIAL]
    ent = caps[ScannerType.ENTERPRISE]
    hosting = caps[ScannerType.HOSTING]
    # §6.8 orderings.  Hosting-vs-residential is compared on means: the
    # hosting group is small at simulation scale and its median is noisy,
    # while its upper half (the actual Figure 7 separation) is stable.
    assert inst.speed.median_pps > hosting.speed.median_pps
    assert hosting.speed.mean_pps > res.speed.mean_pps
    assert ent.speed.median_pps < hosting.speed.mean_pps  # throttled
    assert inst.coverage.mean > res.coverage.mean
    assert ratio > 8
    # Threshold fractions: 84% institutional vs 12% residential over 1k pps.
    assert inst.speed.fraction_over_1000pps > 0.6
    assert res.speed.fraction_over_1000pps < 0.35
