"""§6.1–6.5 — tool usage: common-tool adoption over the years, per-tool
speeds (ZMap fastest; NMap beats Masscan; Mirai slowest), the top-100 speed
trend, coverage modes betraying sharded scans, and tool geography.
"""

import numpy as np

import paper_reference as ref
from conftest import emit
from repro._util.fmt import format_table
from repro.core import summarize_period
from repro.core.coverage import collaborating_subnets, coverage_by_tool, coverage_modes
from repro.core.ecosystem import common_tool_share
from repro.core.geography import tool_country_shares
from repro.core.speed import (
    nmap_faster_than_masscan,
    speed_stats_by_tool,
    tool_speed_trend,
    top_k_speed_trend,
)
from repro.scanners import Tool


def test_common_tool_adoption(analyses, benchmark, capsys):
    """§6.1: tracked-tool share of scans 34% (2015) → 54% (2020), dropping
    again by 2022; packet share 25% (2015) → 92% (2020), <40% by 2024."""

    def measure():
        out = {}
        for year, analysis in analyses.items():
            s = summarize_period(analysis)
            out[year] = (common_tool_share(s, by_packets=False),
                         common_tool_share(s, by_packets=True))
        return out

    shares = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[y, f"{a * 100:.0f}%", f"{b * 100:.0f}%"]
            for y, (a, b) in sorted(shares.items())]
    emit(capsys, "\n".join([
        "", "=" * 78, "§6.1 — tracked-tool share of scans / packets",
        "=" * 78, format_table(["year", "scans", "packets"], rows),
        "paper: scans 34% (2015) → 54% (2020); packets 25% (2015) → 92% (2020),",
        "       under 40% again by 2024",
    ]))

    assert shares[2020][0] > shares[2015][0]
    assert shares[2020][1] > 0.6          # packets concentrated in tracked tools
    assert shares[2024][1] < shares[2020][1]  # de-fingerprinting


def test_tool_speed_ordering(analyses, benchmark, capsys):
    """§6.3: ZMap fastest; NMap outpaces Masscan; Mirai slowest."""
    analysis = analyses[2020]

    by_tool = benchmark.pedantic(
        lambda: speed_stats_by_tool(analysis.study_scans), rounds=1, iterations=1
    )
    rows = [[t.value, s.scans, f"{s.median_pps:,.0f}", f"{s.mean_pps:,.0f}",
             f"{s.fraction_over_1gbps * 100:.1f}%"]
            for t, s in sorted(by_tool.items(), key=lambda kv: -kv[1].median_pps)]
    emit(capsys, "\n".join([
        "", "§6.3 — per-tool speeds (2020)",
        format_table(["tool", "scans", "median pps", "mean pps", ">1Gbps"], rows),
    ]))

    assert by_tool[Tool.ZMAP].median_pps == max(
        s.median_pps for s in by_tool.values()
    )
    assert nmap_faster_than_masscan(analysis.study_scans) is True
    assert by_tool[Tool.MIRAI].median_pps == min(
        s.median_pps for s in by_tool.values()
    )
    # Only a select few exceed 1 Gbps.
    assert by_tool[Tool.ZMAP].fraction_over_1gbps < 0.2


def test_speed_trends(analyses, benchmark, capsys):
    """§6.3: overall speed flat-to-declining; top-100 accelerating
    (paper R = 0.356); NMap the only tool trending up (R = 0.12)."""
    tables = {year: a.study_scans for year, a in analyses.items()}

    def measure():
        return (top_k_speed_trend(tables, k=100),
                tool_speed_trend(tables, Tool.NMAP))

    top, nmap = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(capsys, "\n".join([
        "", "§6.3 — speed trends across the decade",
        f"top-100 mean speed trend: R = {top.r:.2f} (paper: +0.356)",
        f"NMap median speed trend:  R = {nmap.r:.2f} (paper: +0.12)",
        "top-100 by year: " + " ".join(f"{v:,.0f}" for v in top.values),
    ]))
    assert top.increasing
    assert nmap.increasing


def test_coverage_modes_and_collaboration(analyses, sims, benchmark, capsys):
    """§6.4: sharded scans leave coverage modes; collaborating subnets
    appear as /24s of concurrent scanners with near-identical coverage."""
    analysis = analyses[2024]

    def measure():
        scans = analysis.study_scans
        zmap = scans.select(scans.tool.astype(str) == Tool.ZMAP.value)
        return (coverage_modes(zmap.coverage, min_count=5, excess_factor=2.0),
                collaborating_subnets(scans, min_sources=4))

    modes, clusters = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["", "§6.4 — coverage modes (ZMap, 2024) and collaborating subnets"]
    for m in modes[:8]:
        lines.append(f"  mode at coverage {m.coverage:.4%}: {m.count} scans "
                     f"({m.excess:.1f}x neighbours)")
    lines.append(f"collaborating /24 clusters found: {len(clusters)}")
    for c in clusters[:5]:
        lines.append(f"  /24 {c.slash24:#08x}: {c.sources} sources, "
                     f"mean coverage {c.mean_coverage:.4%}")
    emit(capsys, "\n".join(lines))

    # 2024 is sharding-heavy: collaboration must be visible.
    assert clusters, "sharded campaigns must form visible subnet clusters"


def test_coverage_by_tool(analyses, benchmark, capsys):
    """§6.4: large single-source scans are rare and shrinking."""

    def measure():
        return {year: coverage_by_tool(a.study_scans)
                for year, a in analyses.items()}

    per_year = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = []
    for year in (2016, 2020, 2024):
        for tool, stats in per_year[year].items():
            rows.append([year, tool.value, stats.scans,
                         f"{stats.mean * 100:.2f}%", f"{stats.p90 * 100:.2f}%"])
    emit(capsys, "\n".join([
        "", "§6.4 — coverage by tool (selected years)",
        format_table(["year", "tool", "scans", "mean cov", "p90 cov"], rows),
    ]))

    # Masscan's mean per-scan coverage shrinks as campaigns spread out.
    early = per_year[2016].get(Tool.MASSCAN)
    late = per_year[2024].get(Tool.MASSCAN)
    if early and late and late.scans >= 3:
        assert late.mean <= early.mean * 1.5


def test_mirai_port_footprint(analyses, benchmark, capsys):
    """§6.2: Mirai's scan routine spreads over the port range after the
    2016 source release (99.6% of all TCP ports carry the fingerprint by
    2020 at full scale)."""

    def measure():
        from repro.core.ports_analysis import tool_port_footprint
        return {year: tool_port_footprint(a.study_scans, Tool.MIRAI)
                for year, a in analyses.items() if year >= 2017}

    footprints = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[y, n, f"{cov:.2%}"] for y, (n, cov) in sorted(footprints.items())]
    emit(capsys, "\n".join([
        "", "§6.2 — distinct ports carrying the Mirai fingerprint",
        format_table(["year", "ports", "of range"], rows),
        "paper: 65,286 ports (99.6%) by 2020 at full scale",
    ]))

    assert footprints[2020][0] > 1.5 * footprints[2017][0]
    assert footprints[2020][0] > 25


def test_churn_correction(analyses, benchmark, capsys):
    """§4.2: source counts overstate device counts in churning space."""
    from repro.core.churn import fit_population_by_type
    from repro.enrichment.types import ScannerType
    analysis = analyses[2020]

    def measure():
        return {
            stype: fit_population_by_type(analysis, stype)
            for stype in (ScannerType.RESIDENTIAL, ScannerType.HOSTING,
                          ScannerType.INSTITUTIONAL)
        }

    fits = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[st.value, f.observed_sources, f"{f.population:,.0f}",
             f"{f.lifetime_days:.1f}d", f"{f.inflation_factor:.2f}x"]
            for st, f in fits.items() if f is not None]
    emit(capsys, "\n".join([
        "", "§4.2 — churn-corrected populations (2020)",
        format_table(["type", "addresses", "devices (est.)",
                      "lifetime", "inflation"], rows),
    ]))

    res = fits[ScannerType.RESIDENTIAL]
    inst = fits[ScannerType.INSTITUTIONAL]
    assert res is not None and inst is not None
    # Residential space churns; institutional sources are static.
    assert res.inflation_factor > inst.inflation_factor
    assert inst.inflation_factor < 2.0


def test_tool_geography(analyses, benchmark, capsys):
    """§6.5: ZMap almost exclusively from China and the US."""
    analysis = analyses[2021]

    geo = benchmark.pedantic(
        lambda: tool_country_shares(analysis, Tool.ZMAP), rounds=1, iterations=1
    )
    rows = [[c, f"{v * 100:.0f}%"]
            for c, v in sorted(geo.items(), key=lambda kv: -kv[1])[:6]]
    emit(capsys, "\n".join([
        "", "§6.5 — ZMap origin countries (2021)",
        format_table(["country", "share"], rows),
    ]))
    assert geo
    assert geo.get("CN", 0) + geo.get("US", 0) > 0.4
