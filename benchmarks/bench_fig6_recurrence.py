"""Figure 6 — scanner recurrence and downtime between scans.

Non-institutional sources rarely scan twice (burned addresses, DHCP churn);
institutional sources show a pronounced daily-rescan mode.
"""

import numpy as np

from conftest import emit
from repro._util.fmt import format_table
from repro.core.recurrence import institutional_daily_scanners, recurrence_by_type
from repro.enrichment.types import SCANNER_TYPE_ORDER, ScannerType


def test_fig6_recurrence(rich_recent_years, benchmark, capsys):
    # The daily re-scan cadence needs enough institutional campaigns to be
    # visible, so this figure runs on the richer 2024 period.
    _, analysis = rich_recent_years[2024]

    by_type = benchmark.pedantic(
        lambda: recurrence_by_type(analysis.study_scans), rounds=1, iterations=1
    )

    rows = []
    for stype in SCANNER_TYPE_ORDER:
        if stype not in by_type:
            continue
        s = by_type[stype]
        rows.append([
            stype.value, s.sources,
            f"{s.fraction_recurring * 100:.0f}%",
            f"{s.fraction_over_100_scans * 100:.1f}%",
            f"{s.fraction_downtime_within_day * 100:.0f}%",
            f"{s.daily_mode_fraction * 100:.0f}%",
        ])
    daily = institutional_daily_scanners(analysis.study_scans)
    text = "\n".join([
        "", "=" * 78,
        "FIGURE 6 — recurrence per scanner type (2024)",
        "=" * 78,
        format_table(["type", "sources", "recurring", ">100 scans",
                      "downtime<=1d", "daily mode"], rows),
        "",
        f"Institutional sources on a near-daily cadence: {daily}",
    ])
    emit(capsys, text)

    inst = by_type.get(ScannerType.INSTITUTIONAL)
    assert inst is not None
    res = by_type.get(ScannerType.RESIDENTIAL)
    assert res is not None
    # Institutional scanners come back; residential ones essentially don't.
    assert inst.fraction_recurring > 0.3
    assert res.fraction_recurring < 0.5
    assert inst.fraction_recurring > 3 * max(res.fraction_recurring, 0.01)
    # The daily mode exists for institutions only.
    assert inst.daily_mode_fraction > 0.35
    assert daily >= 2
    if res.downtime_cdf[0].size:
        assert res.daily_mode_fraction < inst.daily_mode_fraction
