"""Figure 3 — distinct ports targeted per source IP, per year.

CDF of the number of different ports each source probes: 83% single-port in
2015 falling to 65% by 2022, with ≥5-port sources growing from 2% to ~10%.
"""

import numpy as np

import paper_reference as ref
from conftest import emit
from repro._util.fmt import format_table
from repro._util.stats import pearson_r
from repro.core.ports_analysis import ports_per_source_summary


def test_fig3_ports_per_source(analyses, benchmark, capsys):
    def measure():
        return {year: ports_per_source_summary(a.study_batch)
                for year, a in analyses.items()}

    per_year = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    for year, s in sorted(per_year.items()):
        paper = ref.SINGLE_PORT_FRACTION.get(year)
        rows.append([
            year, s.sources,
            f"{paper * 100:.0f}%" if paper else "-",
            f"{s.fraction_single_port * 100:.1f}%",
            f"{s.fraction_at_least_3 * 100:.1f}%",
            f"{s.fraction_at_least_5 * 100:.1f}%",
            f"{s.fraction_more_than_10 * 100:.1f}%",
        ])
    text = "\n".join([
        "", "=" * 78,
        "FIGURE 3 — distinct ports per source IP",
        "=" * 78,
        format_table(["year", "sources", "1 port (paper)", "1 port",
                      ">=3 ports", ">=5 ports", ">10 ports"], rows),
    ])
    emit(capsys, text)

    # Single-port share declines monotonically-ish over the decade.
    years = sorted(per_year)
    singles = [per_year[y].fraction_single_port for y in years]
    r, p = pearson_r(years, singles)
    assert r < -0.7, "single-port share must trend downward"
    # Calibration anchors within a few points.
    for year, expected in ref.SINGLE_PORT_FRACTION.items():
        assert abs(per_year[year].fraction_single_port - expected) < 0.12
    # Multi-port scanning grows: >=3-port share increases significantly
    # (the paper quotes R = 0.88 for the scan-level trend).
    multis = [per_year[y].fraction_at_least_3 for y in years]
    r_multi, _ = pearson_r(years, multis)
    assert r_multi > 0.7
