"""§4.1 — growth arithmetic: 30× packets, 39× scans over ten years, and the
2023→2024 jump in ZMap scans per day (sharded collaborative scanning).
"""

import numpy as np

import paper_reference as ref
from conftest import emit
from repro._util.fmt import format_table
from repro.core import growth_report, summarize_period
from repro.scanners import Tool


def test_growth_headlines(decade, benchmark, capsys):
    def measure():
        projected = {}
        for year, (sim, analysis) in decade.items():
            s = summarize_period(analysis)
            import dataclasses
            projected[year] = dataclasses.replace(
                s,
                packets_per_day=s.packets_per_day / sim.packet_scale,
                scans_per_month=s.scans_per_month / sim.scan_scale,
            )
        return growth_report(projected), projected

    report, projected = benchmark.pedantic(measure, rounds=1, iterations=1)

    text = "\n".join([
        "", "=" * 78,
        "§4.1 — growth over ten years (projected to real-world volume)",
        "=" * 78,
        f"packet growth 2015→2024: {report.packet_growth:.1f}x "
        f"(paper: {ref.PACKET_GROWTH_10Y:.0f}x)",
        f"scan growth   2015→2024: {report.scan_growth:.1f}x "
        f"(paper: {ref.SCAN_GROWTH_10Y:.0f}x)",
        f"scan intensity (pkts/scan) 2015: {report.intensity_first:,.0f}  "
        f"2024: {report.intensity_last:,.0f}",
    ])
    emit(capsys, text)

    # Who wins and by roughly what factor.
    assert 15 < report.packet_growth < 60
    assert 20 < report.scan_growth < 80
    assert report.scan_growth > report.packet_growth  # scans outgrow packets
    # Intensity rose mid-decade then collapsed as campaigns spread out.
    mid = projected[2020].packets_per_day * 30 / projected[2020].scans_per_month
    assert mid > report.intensity_first
    assert report.intensity_last < mid


def test_zmap_scans_jump_2024(decade, benchmark, capsys):
    """§4.1: ZMap scans/day in 2024 far exceed 2023's maximum."""

    def measure():
        out = {}
        for year in (2023, 2024):
            sim, analysis = decade[year]
            scans = analysis.study_scans
            zmap = scans.select(scans.tool.astype(str) == Tool.ZMAP.value)
            per_day = len(zmap) / sim.days / sim.scan_scale
            sources = np.unique(zmap.src_ip).size / sim.scan_scale
            out[year] = (per_day, sources)
        return out

    stats = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[y, f"{v[0]:,.0f}", f"{v[1]:,.0f}"] for y, v in sorted(stats.items())]
    text = "\n".join([
        "", "§4.1 — ZMap scans/day and participating hosts (projected)",
        format_table(["year", "zmap scans/day", "zmap sources"], rows),
        "paper: min 17,122 scans/day in 2024 vs max 9,051 in 2023;",
        "       hosts 25,809 (2023) → 41,038 (2024)",
    ])
    emit(capsys, text)

    assert stats[2024][0] > 1.5 * stats[2023][0]
    assert stats[2024][1] > stats[2023][1]


def test_intensity_arc(analyses, benchmark, capsys):
    """§5.3: scans got more intensive and longer through 2020, then spread
    out over many hosts — per-scan intensity falls after 2021."""
    from repro.core.trends import scan_intensity

    def measure():
        return {year: scan_intensity(a.study_scans)
                for year, a in analyses.items() if len(a.study_scans)}

    reports = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[y, r.scans, f"{r.median_packets:,.0f}", f"{r.mean_packets:,.0f}",
             f"{r.median_duration_s / 3600:.1f}h"]
            for y, r in sorted(reports.items())]
    emit(capsys, "\n".join([
        "", "§5.3 — per-scan intensity and duration",
        format_table(["year", "scans", "median pkts", "mean pkts",
                      "median duration"], rows),
    ]))

    # Mid-decade scans are heavier than both the start and the sharded end.
    mid = np.mean([reports[y].mean_packets for y in (2019, 2020, 2021)])
    assert mid > reports[2015].mean_packets * 0.8
    assert mid > np.mean([reports[y].median_packets for y in (2023, 2024)])
    assert reports[2024].median_packets < reports[2020].median_packets * 1.2
