"""Dump the library's throughput numbers to ``BENCH_performance.json``.

Runs the ``test_perf_*`` benchmarks of :mod:`bench_performance` under
pytest-benchmark, then reduces the raw timing distributions to a compact
``{benchmark name: {median_s, mean_s, rounds}}`` document that CI can archive
and diff across commits.  Usage::

    PYTHONPATH=src python benchmarks/perf_report.py [--out BENCH_performance.json]

The heavy decade fixture is shared with the other benchmarks, so the same
``REPRO_BENCH_*`` environment knobs (see ``conftest.py``) shrink this run
for smoke testing.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

BENCH_DIR = Path(__file__).parent
DEFAULT_OUT = BENCH_DIR.parent / "BENCH_performance.json"


def run_benchmarks(raw_json: Path) -> int:
    """Run bench_performance.py with pytest-benchmark's JSON export."""
    cmd = [
        sys.executable, "-m", "pytest",
        str(BENCH_DIR / "bench_performance.py"),
        "-q", "-p", "no:cacheprovider",
        f"--benchmark-json={raw_json}",
    ]
    return subprocess.call(cmd)


def summarise(raw_json: Path) -> dict:
    """Reduce pytest-benchmark's export to medians per benchmark."""
    data = json.loads(raw_json.read_text())
    out = {}
    for bench in data.get("benchmarks", []):
        stats = bench["stats"]
        entry = {
            "median_s": stats["median"],
            "mean_s": stats["mean"],
            "stddev_s": stats["stddev"],
            "rounds": stats["rounds"],
        }
        # Streaming benchmarks attach throughput / peak-RSS gauges via
        # ``benchmark.extra_info``; publish them next to the timings.
        extra = bench.get("extra_info") or {}
        if extra:
            entry["extra"] = dict(sorted(extra.items()))
        out[bench["name"]] = entry
    return {
        "machine": data.get("machine_info", {}).get("node", "unknown"),
        "python": data.get("machine_info", {}).get("python_version", ""),
        "datetime": data.get("datetime", ""),
        "benchmarks": out,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="summary JSON path")
    parser.add_argument("--raw", type=Path, default=None,
                        help="keep pytest-benchmark's full export here")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        raw_json = args.raw or Path(tmp) / "raw.json"
        code = run_benchmarks(raw_json)
        if code != 0:
            print(f"benchmark run failed (exit {code})", file=sys.stderr)
            return code
        summary = summarise(raw_json)

    args.out.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(summary['benchmarks'])} benchmark medians to {args.out}")
    for name, stats in sorted(summary["benchmarks"].items()):
        line = f"  {name:40s} median {stats['median_s'] * 1e3:9.2f} ms"
        extra = stats.get("extra", {})
        if "stream_packets_per_s" in extra:
            line += (f"  ({extra['stream_packets_per_s']:,} pps, "
                     f"peak RSS {extra['peak_rss_bytes'] / 1e6:.0f} MB)")
        print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
