"""Dump the library's throughput numbers to ``BENCH_performance.json``.

Runs the ``test_perf_*`` benchmarks of :mod:`bench_performance` under
pytest-benchmark, then reduces the raw timing distributions to a compact
``{benchmark name: {median_s, mean_s, rounds}}`` document that CI can archive
and diff across commits.  Usage::

    PYTHONPATH=src python benchmarks/perf_report.py [--out BENCH_performance.json]

With ``--check-against BASELINE`` the run doubles as a regression gate:
after regenerating the medians it compares each benchmark against the
committed baseline document and exits 1 when any median regressed by more
than ``--tolerance`` (default 0.30, i.e. 30%).  The ``REPRO_BENCH_*``
environment knobs (see ``conftest.py``) are embedded in the JSON; when the
baseline was produced under different knobs the numbers are not comparable,
so the gate warns and passes instead of failing on apples-to-oranges data.

The heavy decade fixture is shared with the other benchmarks, so the same
``REPRO_BENCH_*`` knobs shrink this run for smoke testing.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

BENCH_DIR = Path(__file__).parent
DEFAULT_OUT = BENCH_DIR.parent / "BENCH_performance.json"

#: Fixture-scale knobs that make two runs comparable (conftest.py reads
#: these); recorded in the summary so the gate can refuse mismatched diffs.
ENV_KNOBS = (
    "REPRO_BENCH_DAYS",
    "REPRO_BENCH_MAX_PACKETS",
    "REPRO_BENCH_WORKERS",
    "REPRO_BENCH_CACHE",
)


def run_benchmarks(raw_json: Path) -> int:
    """Run bench_performance.py with pytest-benchmark's JSON export."""
    cmd = [
        sys.executable, "-m", "pytest",
        str(BENCH_DIR / "bench_performance.py"),
        "-q", "-p", "no:cacheprovider",
        f"--benchmark-json={raw_json}",
    ]
    return subprocess.call(cmd)


def summarise(raw_json: Path) -> dict:
    """Reduce pytest-benchmark's export to medians per benchmark."""
    data = json.loads(raw_json.read_text())
    out = {}
    for bench in data.get("benchmarks", []):
        stats = bench["stats"]
        entry = {
            "median_s": stats["median"],
            "mean_s": stats["mean"],
            "stddev_s": stats["stddev"],
            "rounds": stats["rounds"],
        }
        # Streaming benchmarks attach throughput / peak-RSS gauges via
        # ``benchmark.extra_info``; publish them next to the timings.
        extra = bench.get("extra_info") or {}
        if extra:
            entry["extra"] = dict(sorted(extra.items()))
        out[bench["name"]] = entry
    return {
        "machine": data.get("machine_info", {}).get("node", "unknown"),
        "python": data.get("machine_info", {}).get("python_version", ""),
        "datetime": data.get("datetime", ""),
        "env": {knob: os.environ.get(knob, "") for knob in ENV_KNOBS},
        "benchmarks": out,
    }


def check_regressions(summary: dict, baseline: dict, tolerance: float) -> int:
    """Compare medians against a committed baseline document.

    Returns the number of hard regressions (median slower than the
    baseline's by more than ``tolerance``).  A knob mismatch makes the two
    documents incomparable: warn and report zero regressions (fail-soft),
    so a deliberate fixture-scale change does not brick CI before the
    baseline is regenerated.
    """
    baseline_env = baseline.get("env", {})
    current_env = summary["env"]
    if baseline_env != current_env:
        print(
            "perf gate: baseline env knobs "
            f"{baseline_env} != current {current_env}; "
            "numbers are not comparable — skipping the regression check "
            "(regenerate and commit the baseline to re-arm the gate)",
            file=sys.stderr,
        )
        return 0

    regressions = 0
    for name, stats in sorted(summary["benchmarks"].items()):
        base = baseline.get("benchmarks", {}).get(name)
        if base is None:
            print(f"perf gate: {name}: new benchmark, no baseline (ok)")
            continue
        old, new = base["median_s"], stats["median_s"]
        ratio = new / old if old > 0 else float("inf")
        verdict = "ok"
        if ratio > 1.0 + tolerance:
            verdict = "REGRESSION"
            regressions += 1
        print(
            f"perf gate: {name}: {old * 1e3:.2f} ms -> {new * 1e3:.2f} ms "
            f"({ratio:.2f}x baseline, tolerance {1.0 + tolerance:.2f}x) "
            f"{verdict}"
        )
    for name in sorted(baseline.get("benchmarks", {})):
        if name not in summary["benchmarks"]:
            print(f"perf gate: {name}: dropped from the suite", file=sys.stderr)
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="summary JSON path")
    parser.add_argument("--raw", type=Path, default=None,
                        help="keep pytest-benchmark's full export here")
    parser.add_argument("--check-against", type=Path, default=None,
                        help="committed baseline JSON to gate against "
                             "(exit 1 on any median regressing past the "
                             "tolerance)")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional median slowdown "
                             "(default 0.30)")
    args = parser.parse_args(argv)

    # Read the baseline up front: --out and --check-against may be the same
    # path (regenerate-in-place), so capture it before overwriting.
    baseline = None
    if args.check_against is not None:
        if args.check_against.is_file():
            baseline = json.loads(args.check_against.read_text())
        else:
            print(f"perf gate: no baseline at {args.check_against}; "
                  "gate disarmed for this run", file=sys.stderr)

    with tempfile.TemporaryDirectory() as tmp:
        raw_json = args.raw or Path(tmp) / "raw.json"
        code = run_benchmarks(raw_json)
        if code != 0:
            print(f"benchmark run failed (exit {code})", file=sys.stderr)
            return code
        summary = summarise(raw_json)

    args.out.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(summary['benchmarks'])} benchmark medians to {args.out}")
    for name, stats in sorted(summary["benchmarks"].items()):
        line = f"  {name:40s} median {stats['median_s'] * 1e3:9.2f} ms"
        extra = stats.get("extra", {})
        if "stream_packets_per_s" in extra:
            # Sharded runs report the per-shard peak (their memory bound);
            # serial runs the process-wide one.
            rss = extra.get(
                "peak_rss_bytes", extra.get("peak_shard_rss_bytes", 0)
            )
            line += (f"  ({extra['stream_packets_per_s']:,} pps, "
                     f"peak RSS {rss / 1e6:.0f} MB)")
        if "scaling_1_to_4" in extra:
            line += f"  (1->4 shard scaling {extra['scaling_1_to_4']:.2f}x)"
        print(line)

    if baseline is not None:
        regressions = check_regressions(summary, baseline, args.tolerance)
        if regressions:
            print(f"perf gate: {regressions} benchmark(s) regressed past "
                  f"+{args.tolerance:.0%}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
