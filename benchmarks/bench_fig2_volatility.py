"""Figure 2 — weekly change of scanning per /16 netblock.

CDFs of week-over-week change factors for participating IPs, scans launched
and packets sent.  Paper headline: >50% of /16s change by at least 2×; only
20–30% are stable.
"""

import numpy as np

import paper_reference as ref
from conftest import emit
from repro._util.fmt import format_table
from repro.core.volatility import volatility_summary


def test_fig2_weekly_volatility(analyses, benchmark, capsys):
    def measure():
        return {year: volatility_summary(a) for year, a in analyses.items()}

    per_year = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    for year, summary in sorted(per_year.items()):
        for metric in ("sources", "scans", "packets"):
            s = summary[metric]
            rows.append([
                year, metric, s.pairs,
                f"{s.fraction_stable * 100:.0f}%",
                f"{s.fraction_at_least_2x * 100:.0f}%",
                f"{s.fraction_at_least_3x * 100:.0f}%",
            ])
    text = "\n".join([
        "", "=" * 78,
        "FIGURE 2 — weekly /16 change factors "
        f"(paper: ≥2x for >{ref.WEEKLY_2X_FRACTION:.0%} of blocks)",
        "=" * 78,
        format_table(
            ["year", "metric", "block-weeks", "stable", ">=2x", ">=3x"], rows),
    ])
    emit(capsys, text)

    # Shape: the ecosystem is volatile in every year — a large share of
    # netblocks at least doubles/halves weekly, and stability is the
    # exception, mirroring the paper's 20–30% stable / >50% >=2x split.
    fractions_2x = [summary["sources"].fraction_at_least_2x
                    for summary in per_year.values()]
    assert np.mean(fractions_2x) > 0.35
    stable = [summary["sources"].fraction_stable for summary in per_year.values()]
    assert np.mean(stable) < 0.45
    for summary in per_year.values():
        assert summary["packets"].fraction_at_least_2x > 0.2
