"""Figure 5 — scanner-type distribution over the most-targeted ports.

Residential sources dominate most ports; HTTPS (443) and DSC (3390) are
institutional-heavy; JSON-RPC (8545) is an enterprise anomaly (the FPT AS).
"""

import numpy as np

from conftest import emit
from repro._util.fmt import format_table
from repro.core.classification import port_type_distribution
from repro.enrichment.types import SCANNER_TYPE_ORDER, ScannerType


def test_fig5_scanner_types_per_port(analyses, benchmark, capsys):
    analysis = analyses[2022]

    dist = benchmark.pedantic(
        lambda: port_type_distribution(analysis, top_n=15),
        rounds=1, iterations=1,
    )
    assert len(dist) == 15

    rows = []
    for port, mix in dist.items():
        rows.append([port] + [f"{mix[t] * 100:.0f}%" for t in SCANNER_TYPE_ORDER])
    text = "\n".join([
        "", "=" * 78,
        "FIGURE 5 — scanner types per top-15 port (2022, share of scans)",
        "=" * 78,
        format_table(["port"] + [t.value for t in SCANNER_TYPE_ORDER], rows),
    ])

    # The enterprise JSON-RPC anomaly, measured on the scans directly.
    scans = analysis.study_scans
    types = np.array([str(t) for t in scans.scanner_type])
    mask_8545 = np.array([
        bool(p.size) and 8545 in p for p in scans.port_sets
    ])
    extra = []
    if mask_8545.any():
        ent = np.mean(types[mask_8545] == ScannerType.ENTERPRISE.value)
        extra.append(f"8545 (JSON-RPC) scans from enterprise space: {ent:.0%}")
        base = np.mean(types == ScannerType.ENTERPRISE.value)
        extra.append(f"enterprise share over all scans: {base:.0%}")
        assert ent > base, "8545 must be enterprise-skewed"
    emit(capsys, text + ("\n" + "\n".join(extra) if extra else ""))

    # Residential sources dominate most of the top ports...
    residential_heavy = sum(
        1 for mix in dist.values()
        if max(mix, key=mix.get) == ScannerType.RESIDENTIAL
    )
    assert residential_heavy >= 5
    # ...but 443 is disproportionately institutional.
    if 443 in dist:
        inst_shares = {p: m[ScannerType.INSTITUTIONAL] for p, m in dist.items()}
        assert inst_shares[443] >= np.median(list(inst_shares.values()))
