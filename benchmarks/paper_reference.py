"""Published values from the paper, used as reference columns in benchmark
output.  Garbled table cells (see DESIGN.md) carry the cleaned values also
used for calibration — the comparison for those cells is rank-order only.
"""

from repro.scanners import Tool

#: Table 1: telescope packets/day.
PACKETS_PER_DAY = {
    2015: 11e6, 2016: 19e6, 2017: 45e6, 2018: 133e6, 2019: 117e6,
    2020: 283e6, 2021: 281e6, 2022: 285e6, 2023: 402e6, 2024: 345e6,
}

#: Table 1: observed scans/month.
SCANS_PER_MONTH = {
    2015: 33e3, 2016: 38e3, 2017: 252e3, 2018: 137e3, 2019: 238e3,
    2020: 222e3, 2021: 290e3, 2022: 777e3, 2023: 727e3, 2024: 1.3e6,
}

#: Table 1: top-5 ports by packets (rank order).
TOP_PORTS_BY_PACKETS = {
    2015: [22, 8080, 3389, 80, 443],
    2016: [22, 80, 3389, 1433, 8080],
    2017: [5358, 7574, 22, 2323, 6789],
    2018: [22, 8545, 3389, 80, 8080],
    2019: [22, 80, 8080, 81, 3389],
    2020: [80, 3389, 81, 22, 8080],
    2021: [6379, 22, 80, 3389, 8080],
    2022: [22, 80, 443, 2375, 2376],
    2023: [22, 8080, 80, 3389, 443],
    2024: [3389, 22, 80, 443, 8080],
}

#: Table 1: top-5 ports by sources (rank order).
TOP_PORTS_BY_SOURCES = {
    2015: [10073, 3389, 80, 8080, 22555],
    2016: [21, 3389, 20012, 80, 8080],
    2017: [7545, 2323, 5358, 22, 23231],
    2018: [8291, 2323, 21, 22, 80],
    2019: [80, 8080, 2323, 5555, 5900],
    2020: [80, 8080, 81, 5555, 2323],
    2021: [80, 8080, 5555, 81, 8443],
    2022: [80, 8080, 5555, 81, 8443],
    2023: [80, 8080, 52869, 60023, 2323],
    2024: [80, 8080, 443, 2323, 5900],
}

#: Table 1: tool shares by scans.
TOOL_SHARES_BY_SCANS = {
    2015: {Tool.MASSCAN: 0.005, Tool.NMAP: 0.317, Tool.MIRAI: 0.0, Tool.ZMAP: 0.021},
    2016: {Tool.MASSCAN: 0.015, Tool.NMAP: 0.128, Tool.MIRAI: 0.0, Tool.ZMAP: 0.091},
    2017: {Tool.MASSCAN: 0.007, Tool.NMAP: 0.026, Tool.MIRAI: 0.465, Tool.ZMAP: 0.011},
    2018: {Tool.MASSCAN: 0.209, Tool.NMAP: 0.032, Tool.MIRAI: 0.192, Tool.ZMAP: 0.047},
    2019: {Tool.MASSCAN: 0.219, Tool.NMAP: 0.036, Tool.MIRAI: 0.162, Tool.ZMAP: 0.027},
    2020: {Tool.MASSCAN: 0.205, Tool.NMAP: 0.050, Tool.MIRAI: 0.149, Tool.ZMAP: 0.131},
    2021: {Tool.MASSCAN: 0.251, Tool.NMAP: 0.068, Tool.MIRAI: 0.024, Tool.ZMAP: 0.092},
    2022: {Tool.MASSCAN: 0.099, Tool.NMAP: 0.023, Tool.MIRAI: 0.010, Tool.ZMAP: 0.037},
    2023: {Tool.MASSCAN: 0.002, Tool.NMAP: 0.0001, Tool.MIRAI: 0.390, Tool.ZMAP: 0.220},
    2024: {Tool.MASSCAN: 0.002, Tool.NMAP: 0.0001, Tool.MIRAI: 0.053, Tool.ZMAP: 0.590},
}

#: Table 2: (sources, scans, packets) share per scanner type.
TABLE2 = {
    "hosting": (0.0087, 0.0561, 0.1852),
    "enterprise": (0.0671, 0.1575, 0.0385),
    "institutional": (0.0016, 0.0745, 0.3263),
    "residential": (0.5492, 0.4612, 0.2339),
    "unknown": (0.3733, 0.2507, 0.2161),
}

#: §4.1 growth headline.
PACKET_GROWTH_10Y = 30.0
SCAN_GROWTH_10Y = 39.0

#: §5.1: fraction of sources scanning exactly one port, per year.
SINGLE_PORT_FRACTION = {2015: 0.83, 2020: 0.74, 2022: 0.65}

#: §5.1: 80→8080 coupling among port-80 scans.
AFFINITY_80_8080 = {2015: 0.18, 2020: 0.87}

#: §5.3: speed–ports correlation.
SPEED_PORTS_R = 0.88

#: §5.1: service-density / scan-intensity correlation (essentially none).
SERVICE_DENSITY_R = 0.047

#: §6.8: institutional speed multiple over the average scanner.
INSTITUTIONAL_SPEED_RATIO = 92.0

#: §6.8: fraction of scans exceeding 1,000 pps.
OVER_1000PPS = {"residential": 0.12, "institutional": 0.84}

#: Appendix A: known scanners' share of sources / traffic in 2023 and 2024.
KNOWN_SCANNER_SHARE = {
    2023: (0.0036, 0.5131),
    2024: (0.0062, 0.5086),
}

#: §6.8/Figure 8: organisations covering (almost) the full port range in 2024.
FULL_RANGE_ORGS_2024 = {"Censys", "Palo Alto Networks", "Onyphe"}
PARTIAL_RANGE_ORGS_2024 = {"Shadowserver Foundation", "Rapid7", "Shodan"}

#: §4.4 / Figure 2: over half the /16s change at least 2× week-over-week;
#: only 20–30% are stable.
WEEKLY_2X_FRACTION = 0.50
