"""Figures 9 & 10 — per-organisation port-scan footprints, 2023 vs 2024.

Appendix A: activity per known scanner is similar across consecutive years,
but differs starkly *between* scanners; Onyphe's range more than doubles.
The appendix's ETL pipeline is also exercised against the 2024 capture.
"""

import numpy as np

import paper_reference as ref
from conftest import emit
from repro._util.fmt import format_table
from repro.core.institutions import org_footprints, port_coverage_comparison
from repro.enrichment import EtlPipeline, KnownScannerFeed, synthesise_sources


def test_fig9_10_year_over_year(rich_recent_years, benchmark, capsys):
    def measure():
        return (org_footprints(rich_recent_years[2023][1]),
                org_footprints(rich_recent_years[2024][1]))

    fps_2023, fps_2024 = benchmark.pedantic(measure, rounds=1, iterations=1)
    comparison = port_coverage_comparison(fps_2023, fps_2024)

    rows = [
        [org[:28], f"{a * 100:.1f}%", f"{b * 100:.1f}%"]
        for org, (a, b) in sorted(comparison.items(), key=lambda kv: -kv[1][1])
    ]
    text = "\n".join([
        "", "=" * 78,
        "FIGURES 9/10 — known-scanner port coverage, 2023 vs 2024",
        "=" * 78,
        format_table(["organisation", "2023", "2024"], rows),
    ])
    emit(capsys, text)

    # Onyphe scales up dramatically between the two years (§6.8).
    a, b = comparison["Onyphe"]
    assert b > 1.8 * a
    # Censys reaches (nearly) the full range only in 2024.
    c23, c24 = comparison["Censys"]
    assert c24 > 0.85
    assert c23 < c24
    # Measurable organisations are stable year-over-year (within a factor
    # ~2.5); orgs with only a couple of campaigns at simulation scale have
    # footprints too noisy to compare.
    measurable = {
        org: (x, y) for org, (x, y) in comparison.items()
        if max(x, y) >= 0.02
    }
    stable = sum(
        1 for (x, y) in measurable.values()
        if x > 0 and y > 0 and max(x, y) / min(x, y) < 2.5
    )
    assert len(measurable) >= 8
    assert stable >= len(measurable) * 0.55


def test_appendix_etl_on_capture(rich_recent_years, benchmark, capsys):
    """Run the Appendix-A ETL over the 2024 capture's sources and verify it
    re-identifies the known-scanner population."""
    sim, analysis = rich_recent_years[2024]
    registry = sim.registry
    feed = KnownScannerFeed(registry)
    sources = np.unique(analysis.study_batch.src_ip)
    known_mask = feed.is_known(sources)
    observed = sources.tolist()

    data_sources = synthesise_sources(
        registry, feed, observed, rng=7, direct_fraction=0.5
    )

    warehouse = benchmark.pedantic(
        lambda: EtlPipeline(data_sources).run(observed), rounds=1, iterations=1
    )

    known_ips = sources[known_mask]
    matched = sum(1 for ip in known_ips.tolist() if warehouse.actor_of(int(ip)))
    false_pos = sum(
        1 for ip in sources[~known_mask].tolist() if warehouse.actor_of(int(ip))
    )
    text = "\n".join([
        "", "=" * 78,
        "APPENDIX A — ETL over the 2024 capture",
        "=" * 78,
        f"sources observed: {sources.size}",
        f"known-scanner sources: {known_ips.size}",
        f"ETL matched: {matched} ({matched / max(known_ips.size, 1):.0%} recall)",
        f"false positives: {false_pos}",
        f"actors identified: {len(warehouse.actors())} "
        f"(paper 2024: 40 organisations)",
    ])
    emit(capsys, text)

    assert matched / max(known_ips.size, 1) > 0.95
    assert false_pos == 0
    assert len(warehouse.actors()) >= 10
