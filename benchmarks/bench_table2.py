"""Table 2 — scanner-type shares of sources, scans and packets.

The paper's Table 2 aggregates the full dataset; here the measured column is
the volume-weighted aggregate over all ten simulated years.
"""

import numpy as np

import paper_reference as ref
from conftest import emit
from repro._util.fmt import format_table
from repro.core.classification import type_shares
from repro.enrichment.types import SCANNER_TYPE_ORDER, ScannerType
from repro.reporting import render_table2


def aggregate_type_shares(analyses):
    """Volume-weighted aggregation of per-year type shares."""
    totals = {s: {"sources": 0.0, "scans": 0.0, "packets": 0.0}
              for s in SCANNER_TYPE_ORDER}
    weights = {"sources": 0.0, "scans": 0.0, "packets": 0.0}
    for analysis in analyses.values():
        n_sources = analysis.distinct_sources
        n_scans = len(analysis.study_scans)
        n_packets = len(analysis.study_batch)
        for row in type_shares(analysis):
            totals[row.scanner_type]["sources"] += row.sources * n_sources
            totals[row.scanner_type]["scans"] += row.scans * n_scans
            totals[row.scanner_type]["packets"] += row.packets * n_packets
        weights["sources"] += n_sources
        weights["scans"] += n_scans
        weights["packets"] += n_packets
    return {
        stype: tuple(totals[stype][k] / weights[k]
                     for k in ("sources", "scans", "packets"))
        for stype in SCANNER_TYPE_ORDER
    }


def test_table2(analyses, benchmark, capsys):
    aggregated = benchmark.pedantic(
        lambda: aggregate_type_shares(analyses), rounds=1, iterations=1
    )

    rows = []
    for stype in SCANNER_TYPE_ORDER:
        paper = ref.TABLE2[stype.value]
        measured = aggregated[stype]
        rows.append([
            stype.value,
            f"{paper[0] * 100:.2f}% / {measured[0] * 100:.2f}%",
            f"{paper[1] * 100:.2f}% / {measured[1] * 100:.2f}%",
            f"{paper[2] * 100:.2f}% / {measured[2] * 100:.2f}%",
        ])
    text = "\n".join([
        "", "=" * 78,
        "TABLE 2 — scanner types (paper / measured, aggregated over 10 years)",
        "=" * 78,
        format_table(["type", "sources", "scans", "packets"], rows),
        "",
        "Measured 2022 period alone:",
        render_table2(type_shares(analyses[2022])),
    ])
    emit(capsys, text)

    # Shape: institutional tiny in sources, huge in packets; residential
    # dominates sources.
    inst = aggregated[ScannerType.INSTITUTIONAL]
    assert inst[0] < 0.02
    assert inst[2] > 0.15
    res = aggregated[ScannerType.RESIDENTIAL]
    assert res[0] > 0.35
    hosting = aggregated[ScannerType.HOSTING]
    assert hosting[2] > hosting[0]
