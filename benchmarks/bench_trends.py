"""§4.2 cross-year trends: the collapse of the classic top-port share, the
diversification of port and country distributions, the volatility of port
rankings, and the concentration of traffic in few scans.
"""

import numpy as np

from conftest import emit
from repro._util.fmt import format_table
from repro.core.trends import (
    CLASSIC_PORTS,
    classic_port_share_trend,
    country_distribution_entropy,
    metric_trend,
    port_distribution_entropy,
    port_rank_stability,
    traffic_concentration,
)


def test_classic_port_collapse(analyses, benchmark, capsys):
    """§4.2: 22+80+8080 hold >1/3 of packets in 2015, a few percent later."""

    shares = benchmark.pedantic(
        lambda: classic_port_share_trend(analyses), rounds=1, iterations=1
    )
    rows = [[y, f"{v:.1%}"] for y, v in sorted(shares.items())]
    emit(capsys, "\n".join([
        "", "=" * 78,
        f"§4.2 — packet share of ports {CLASSIC_PORTS} "
        "(paper: >33% in 2015, <3% eight years later)",
        "=" * 78,
        format_table(["year", "share"], rows),
    ]))

    # 2015 reproduces the "more than one-third" headline; the later-year
    # floor sits above the paper's (the trio keeps a large share of *source*
    # counts, which leaks a packet floor at simulation scale), but the
    # collapse is unambiguous.
    assert shares[2015] > 0.25
    assert shares[2023] < 0.16
    assert shares[2024] < 0.16
    assert shares[2015] > 2.5 * shares[2023]
    # The series is non-monotone mid-decade (as is the paper's Table 1),
    # so the linear trend is modest but clearly negative.
    assert metric_trend(shares).r < -0.3


def test_diversification_entropy(analyses, benchmark, capsys):
    """Port and country distributions spread out over the decade."""

    def measure():
        return (
            {y: port_distribution_entropy(a) for y, a in analyses.items()},
            {y: country_distribution_entropy(a) for y, a in analyses.items()},
        )

    port_entropy, country_entropy = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    rows = [[y, f"{port_entropy[y]:.2f}", f"{country_entropy[y]:.2f}"]
            for y in sorted(port_entropy)]
    emit(capsys, "\n".join([
        "", "§4.2 — distribution entropy (bits): ports / scan origins",
        format_table(["year", "port entropy", "country entropy"], rows),
    ]))

    assert metric_trend(port_entropy).r > 0.8, "ports must diversify"
    assert port_entropy[2024] > port_entropy[2015] + 2.0
    # Countries diversify too, if less dramatically.
    assert country_entropy[2024] >= country_entropy[2015] - 0.2


def test_port_rank_volatility(analyses, benchmark, capsys):
    """Consecutive years share only part of their top-port list (§4.2)."""

    def measure():
        years = sorted(analyses)
        return {
            (a, b): port_rank_stability(analyses[a], analyses[b], top_n=50)
            for a, b in zip(years, years[1:])
        }

    stability = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[f"{a}->{b}", f"{v:.2f}"] for (a, b), v in sorted(stability.items())]
    emit(capsys, "\n".join([
        "", "§4.2 — top-50 port overlap between consecutive years (Jaccard)",
        format_table(["years", "overlap"], rows),
    ]))

    values = list(stability.values())
    # Rankings churn: never identical, never fully disjoint.
    assert max(values) < 0.95
    assert np.mean(values) > 0.05


def test_traffic_concentration(analyses, sims, benchmark, capsys):
    """A small head of scans carries a disproportionate packet share."""

    def measure():
        return {y: traffic_concentration(a.study_scans)
                for y, a in analyses.items() if len(a.study_scans)}

    per_year = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[y, c.scans, f"{c.gini:.2f}", f"{c.top_1pct_share:.1%}",
             f"{c.top_10pct_share:.1%}", f"{c.share_for_80pct:.1%}"]
            for y, c in sorted(per_year.items())]
    emit(capsys, "\n".join([
        "", "§2/§4 — traffic concentration over scans",
        format_table(["year", "scans", "gini", "top 1%", "top 10%",
                      "scans for 80%"], rows),
        "paper: 0.28% of scans generate ~80% of traffic (Durumeric 2014);",
        "the simulation's per-campaign cap bounds the extreme tail.",
    ]))

    for year, report in per_year.items():
        assert report.gini > 0.3, year
        assert report.top_10pct_share > 0.3, year
        assert report.share_for_80pct < 0.75, year
