"""§5.1–5.4 — scanning dynamics: port-space coverage, alias affinity,
vertical scans, the speed–ports correlation, the service-density
non-correlation, and geographic port biases.
"""

import numpy as np

import paper_reference as ref
from conftest import emit
from repro._util.fmt import format_table
from repro._util.stats import pearson_r
from repro.core.geography import (
    biased_port_counts_by_country,
    port_origin_biases,
)
from repro.core.ports_analysis import (
    port_pair_affinity,
    port_space_coverage,
    service_density_correlation,
    speed_ports_correlation,
    vertical_scan_counts,
)
from repro.simulation.services import ServiceWorld, vertical_scan


def test_port_space_coverage(analyses, benchmark, capsys):
    """§5.1: from 31% of privileged ports probed (2015) to a blanket."""

    def measure():
        return {year: port_space_coverage(a) for year, a in analyses.items()}

    per_year = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[y, c.probed_ports, c.probed_privileged,
             f"{c.privileged_fraction * 100:.0f}%"]
            for y, c in sorted(per_year.items())]
    emit(capsys, "\n".join([
        "", "=" * 78, "§5.1 — port-space coverage above the noise floor",
        "=" * 78,
        format_table(["year", "ports probed", "privileged", "priv. frac"], rows),
    ]))

    years = sorted(per_year)
    probed = [per_year[y].probed_ports for y in years]
    r, _ = pearson_r(years, probed)
    assert r > 0.8, "port-space coverage must grow across the decade"
    assert per_year[2024].probed_ports > 5 * per_year[2015].probed_ports


def test_alias_affinity_trend(analyses, benchmark, capsys):
    """§5.1: 80→8080 coupling grows from 18% (2015) to ~87% (2020+)."""

    def measure():
        return {year: port_pair_affinity(a.study_scans, 80, 8080)
                for year, a in analyses.items()}

    per_year = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[y, f"{ref.AFFINITY_80_8080.get(y, float('nan')) * 100:.0f}%"
             if y in ref.AFFINITY_80_8080 else "-",
             f"{v * 100:.0f}%"] for y, v in sorted(per_year.items())]
    emit(capsys, "\n".join([
        "", "§5.1 — P(scan of 80 also covers 8080)",
        format_table(["year", "paper", "measured"], rows),
    ]))

    assert per_year[2015] < per_year[2020]
    assert per_year[2020] > 0.5
    assert per_year[2015] < 0.5


def test_vertical_scans(analyses, sims, benchmark, capsys):
    """§5.2: vertical scans grow; >100-port scans stay under ~1% of scans."""

    def measure():
        return {year: vertical_scan_counts(a.study_scans)
                for year, a in analyses.items()}

    per_year = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = []
    for year, counts in sorted(per_year.items()):
        projected_10k = counts.over_10000_ports / sims[year].scan_scale
        rows.append([year, counts.total_scans, counts.over_100_ports,
                     counts.over_1000_ports, counts.over_10000_ports,
                     f"{projected_10k:,.0f}"])
    emit(capsys, "\n".join([
        "", "§5.2 — vertical scans (paper: 1 scan >10k ports in 2015, 2,134 in 2020)",
        format_table(["year", "scans", ">100p", ">1000p", ">10000p",
                      ">10000p projected"], rows),
    ]))

    # 2020 is the vertical-scan peak year in the paper's numbers.
    assert per_year[2020].over_10000_ports >= per_year[2015].over_10000_ports
    total_frac_over100 = np.mean([
        c.fraction_over(100) for c in per_year.values()
    ])
    assert total_frac_over100 < 0.15


def test_speed_ports_correlation(analyses, benchmark, capsys):
    """§5.3: faster scans cover more ports (paper R = 0.88)."""

    def measure():
        return {year: speed_ports_correlation(a.study_scans)[0]
                for year, a in analyses.items()}

    per_year = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[y, f"{r:.2f}"] for y, r in sorted(per_year.items())]
    emit(capsys, "\n".join([
        "", f"§5.3 — speed vs ports correlation (paper R = {ref.SPEED_PORTS_R})",
        format_table(["year", "R"], rows),
    ]))
    mean_r = np.mean(list(per_year.values()))
    assert mean_r > 0.15, "speed must correlate positively with port count"


def test_service_density_non_correlation(analyses, benchmark, capsys):
    """§5.1: scan intensity is unrelated to where services actually live
    (paper R = 0.047)."""
    density = vertical_scan(ServiceWorld.default(), n_hosts=60_000, rng=5).density()

    def measure():
        return service_density_correlation(analyses[2022].study_scans, density)

    r, p = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(capsys, f"\n§5.1 — service-density correlation: R = {r:.3f} "
                 f"(paper: {ref.SERVICE_DENSITY_R})")
    assert abs(r) < 0.2


def test_geographic_port_biases(analyses, benchmark, capsys):
    """§5.4: many ports are >80% single-country; China owns the most."""

    def measure():
        return port_origin_biases(analyses[2022], min_share=0.8, min_packets=40)

    biases = benchmark.pedantic(measure, rounds=1, iterations=1)
    counts = biased_port_counts_by_country(biases)
    rows = [[c, n] for c, n in list(counts.items())[:10]]
    emit(capsys, "\n".join([
        "", "§5.4 — ports with >80% single-country origin (2022)",
        format_table(["country", "ports"], rows),
        "paper: CN 14,444 ports, US 666, BR 221, TW 59, IR 57",
    ]))
    assert biases, "biased ports must exist"
    assert counts, "at least one country must own biased ports"
    # At simulation scale each biased tail port reflects a single large
    # campaign, so the exact leader varies; China must sit among the top
    # owners as in the paper.
    assert "CN" in list(counts)[:4]


def test_us_http_abandonment(analyses, benchmark, capsys):
    """§5.4: the US very active on HTTP through 2018, nearly gone by 2019.

    Measured over scans whose primary target is port 80; packet-level
    shares are diluted by background sources and multi-port sweeps.
    """

    def measure():
        out = {}
        for year, a in analyses.items():
            scans = a.study_scans
            mask = scans.primary_port == 80
            if np.any(mask):
                out[year] = float(np.mean(scans.country[mask].astype(str) == "US"))
        return out

    shares = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[y, f"{v:.1%}"] for y, v in sorted(shares.items())]
    emit(capsys, "\n".join([
        "", "§5.4 — US share of port-80 scans (paper: active 2016-2018,",
        "abandons the protocol in 2019)",
        format_table(["year", "US share"], rows),
    ]))

    early = np.mean([shares[y] for y in (2016, 2017, 2018) if y in shares])
    late = np.mean([shares[y] for y in (2019, 2020, 2021) if y in shares])
    assert early > 0.15
    assert late < 0.6 * early
