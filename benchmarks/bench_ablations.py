"""Ablations of the methodology choices DESIGN.md calls out.

* **Campaign criteria (§3.4)** — the paper tightens Durumeric et al.'s
  10 pps / 480 s thresholds to 100 pps / 1 h for its smaller vantage point;
  this ablation measures what each definition finds on identical traffic.
* **Single-source counting (§9)** — the paper's closing caveat: counting
  each source as a scan inflates campaign counts once scans are sharded.
  The collaborative-merging reconstruction quantifies the inflation and is
  scored against the simulator's ground truth.
* **Blocklist staleness (§4.4/§6.6)** — lists of observed scanner IPs go
  stale within days, except for the institutional population.
"""

import numpy as np

from conftest import emit
from repro._util.fmt import format_table
from repro.core import (
    CampaignCriteria,
    analyze_simulation,
    blocklist_effectiveness,
    evaluate_merging,
    institutional_filter_effectiveness,
    merge_collaborative_scans,
    single_source_bias,
)


def test_criteria_sensitivity(sims, benchmark, capsys):
    """Paper thresholds vs Durumeric et al. (2014) on identical captures."""
    sim = sims[2020]

    def measure():
        paper = analyze_simulation(sim)
        loose = analyze_simulation(sim, criteria=CampaignCriteria.durumeric2014())
        return paper, loose

    paper, loose = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = [
        ["scans identified", len(paper.study_scans), len(loose.study_scans)],
        ["distinct scan sources",
         int(np.unique(paper.study_scans.src_ip).size),
         int(np.unique(loose.study_scans.src_ip).size)],
        ["median speed (pps)",
         f"{np.median(paper.study_scans.speed_pps):,.0f}",
         f"{np.median(loose.study_scans.speed_pps):,.0f}"],
    ]
    emit(capsys, "\n".join([
        "", "=" * 78,
        "ABLATION — §3.4 criteria: paper (100 pps / 1 h) vs Durumeric (10 pps / 480 s)",
        "=" * 78,
        format_table(["metric", "paper criteria", "durumeric2014"], rows),
    ]))

    # The looser rate bound admits more scans, but the shorter expiry
    # fragments slow scans — both effects must be visible.
    assert len(loose.study_scans) != len(paper.study_scans)
    paper_srcs = set(np.unique(paper.study_scans.src_ip).tolist())
    loose_srcs = set(np.unique(loose.study_scans.src_ip).tolist())
    assert len(paper_srcs & loose_srcs) > 0.5 * len(paper_srcs)


def test_single_source_counting_bias(decade, benchmark, capsys):
    """§9: reconstructing sharded campaigns deflates scan counts."""

    def measure():
        out = {}
        for year in (2016, 2020, 2024):
            sim, analysis = decade[year]
            merged = merge_collaborative_scans(analysis.study_scans)
            report = single_source_bias(analysis.study_scans, merged)
            truth = {ip: c.campaign_id for c in sim.campaigns
                     for ip in c.src_ips}
            score = evaluate_merging(analysis.study_scans, merged, truth)
            out[year] = (report, score)
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = []
    for year, (report, score) in sorted(results.items()):
        rows.append([
            year, report.observed_scans, report.logical_campaigns,
            f"{report.inflation_factor:.2f}x",
            report.collaborative_campaigns,
            f"{score.pair_precision:.2f}", f"{score.pair_recall:.2f}",
        ])
    emit(capsys, "\n".join([
        "", "=" * 78,
        "ABLATION — §9 single-source counting bias (merged vs observed scans)",
        "=" * 78,
        format_table(["year", "observed", "logical", "inflation",
                      "collabs", "precision", "recall"], rows),
    ]))

    # Inflation grows with the sharding era.
    assert results[2024][0].inflation_factor > results[2016][0].inflation_factor
    assert results[2024][0].inflation_factor > 1.2
    # The reconstruction is trustworthy on ground truth.  (Residual false
    # pairs are independent same-tool campaigns sharing a subnet and time
    # window — indistinguishable from shards for a telescope.)
    for year, (_, score) in results.items():
        assert score.pair_precision > 0.6, year
        assert score.pair_recall > 0.5, year


def test_blocklist_staleness(analyses, benchmark, capsys):
    """§4.4/§6.6: general lists go stale; the institutional list does not."""
    analysis = analyses[2022]

    def measure():
        general = blocklist_effectiveness(analysis.study_batch, build_days=7.0)
        inst = institutional_filter_effectiveness(analysis, build_days=7.0)
        return general, inst

    general, inst = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        [f"w{i}", r.list_size, f"{r.source_hit_rate:.1%}", f"{r.packet_hit_rate:.1%}"]
        for i, r in enumerate(general)
    ]
    emit(capsys, "\n".join([
        "", "=" * 78,
        "ABLATION — blocklist staleness (2022, weekly build/apply windows)",
        "=" * 78,
        format_table(["window", "list size", "src hit", "pkt hit"], rows),
        "",
        f"institutional-only list: {inst.list_size} entries, "
        f"blocks {inst.packet_hit_rate:.1%} of subsequent packets "
        f"({inst.source_hit_rate:.2%} of sources)",
    ]))

    assert general
    mean_src_hit = np.mean([r.source_hit_rate for r in general])
    assert mean_src_hit < 0.35, "general lists must go stale"
    # The institutional list: thousands of times smaller, yet it removes a
    # disproportionate share of traffic.
    mean_size = np.mean([r.list_size for r in general])
    assert inst.list_size < 0.05 * mean_size
    assert inst.packet_hit_rate > 10 * inst.list_size / mean_size


def test_distributed_campaign_detection(decade, benchmark, capsys):
    """Header-pattern clustering (the paper's [27]) finds multi-subnet
    operations that subnet-based shard merging cannot."""
    from repro.core.collaboration import detect_distributed_campaigns

    def measure():
        out = {}
        for year in (2016, 2020, 2024):
            _, analysis = decade[year]
            out[year] = detect_distributed_campaigns(analysis.study_scans)
        return out

    clusters = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = []
    for year, found in sorted(clusters.items()):
        for c in found[:4]:
            rows.append([year, c.tool.value, c.window_mode,
                         len(c.sources), c.subnets,
                         f"{c.total_coverage:.3%}"])
    emit(capsys, "\n".join([
        "", "=" * 78,
        "EXTENSION — cross-subnet distributed campaigns via header patterns",
        "=" * 78,
        format_table(["year", "tool", "window", "sources", "subnets",
                      "joint coverage"], rows) if rows else "none found",
    ]))

    # Every reported cluster is internally consistent.
    for year, found in clusters.items():
        _, analysis = decade[year]
        scans = analysis.study_scans
        for c in found:
            assert c.subnets >= 3
            assert all(int(scans.window_mode[i]) == c.window_mode
                       for i in c.scan_indices)
