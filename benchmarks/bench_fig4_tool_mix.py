"""Figure 4 — top-10 traffic ports and the tools behind their probes.

Per year, the ports receiving the most packets and the per-tool composition
of the scans targeting them: Mirai dominating the 2017 IoT ports, Masscan
carrying the bulk of 2018–2022 traffic, de-fingerprinted tooling rising
after 2022.
"""

import numpy as np

from conftest import emit
from repro._util.fmt import format_table
from repro.reporting import figure4_tool_mix_per_port
from repro.scanners import Tool


def test_fig4_tool_mix(analyses, benchmark, capsys):
    def measure():
        return {year: figure4_tool_mix_per_port(a, top_n=10)
                for year, a in analyses.items()}

    per_year = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    for year in sorted(per_year):
        for port, mix in list(per_year[year].items())[:5]:
            cells = [
                f"{mix.get(tool, 0) * 100:.0f}%"
                for tool in (Tool.MASSCAN, Tool.ZMAP, Tool.NMAP,
                             Tool.MIRAI, Tool.UNKNOWN)
            ]
            rows.append([year, port] + cells)
    text = "\n".join([
        "", "=" * 78,
        "FIGURE 4 — per-port tool composition (traffic share of scans)",
        "=" * 78,
        format_table(["year", "port", "masscan", "zmap", "nmap",
                      "mirai", "unknown"], rows),
    ])
    emit(capsys, text)

    def total_share(year, tool):
        mixes = per_year[year].values()
        shares = [m.get(tool, 0.0) for m in mixes if m]
        return np.mean(shares) if shares else 0.0

    # 2017: Mirai heavily dominates the top IoT ports.
    assert total_share(2017, Tool.MIRAI) > 0.3
    # 2020: Masscan carries the largest share of top-port traffic.
    shares_2020 = {t: total_share(2020, t)
                   for t in (Tool.MASSCAN, Tool.NMAP, Tool.MIRAI)}
    assert max(shares_2020, key=shares_2020.get) == Tool.MASSCAN
    # 2015: custom tooling dominates, NMap visible.
    assert total_share(2015, Tool.UNKNOWN) > 0.4
    # 2024: fingerprintable Masscan has vanished from the top ports.
    assert total_share(2024, Tool.MASSCAN) <= 0.15
