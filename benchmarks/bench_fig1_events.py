"""Figure 1 — scanning spikes after vulnerability disclosures decay fast.

For every disclosure event planted in the decade, measures the port's daily
activity relative to baseline, the peak surge, and the number of days until
the KS test no longer distinguishes post-event activity from baseline.
"""

import numpy as np

from conftest import emit
from repro._util.fmt import format_table
from repro.core.events import event_response


def test_fig1_event_decay(decade, benchmark, capsys):
    def measure():
        responses = []
        for year, (sim, analysis) in decade.items():
            for event in sim.config.events:
                responses.append((year, event, event_response(
                    analysis, event.port, event.day_offset)))
        return responses

    responses = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert responses, "no disclosure events in the decade"

    rows = []
    for year, event, response in responses:
        rows.append([
            year, event.name[:38], event.port,
            f"{response.peak_factor:.1f}x",
            response.days_to_normal if response.returned_to_normal else ">period",
        ])
    text = "\n".join([
        "", "=" * 78,
        "FIGURE 1 — disclosure-event response (peak over baseline, days to normal)",
        "=" * 78,
        format_table(["year", "event", "port", "peak", "days-to-normal"], rows),
        "",
        "Example decay series (first event):",
        "  " + " ".join(f"{v:.1f}" for v in responses[0][2].relative_series[:14]),
    ])
    emit(capsys, text)

    peaks = [r.peak_factor for _, _, r in responses]
    # Spikes are large...
    assert np.median(peaks) > 3.0
    assert max(peaks) > 8.0
    # ...and the Internet forgets fast: most events return to baseline
    # within the period, within a few weeks of disclosure.
    returned = [r for _, _, r in responses if r.returned_to_normal]
    assert len(returned) >= len(responses) * 0.5
    assert np.median([r.days_to_normal for r in returned]) <= 15
